//! End-to-end ArborQL tests over a small Twitter-shaped graph.
//!
//! The fixture mirrors Figure 1's schema:
//!
//! ```text
//! users:   u1..u5  (uid 1..5, followers = uid * 100)
//! tweets:  t1..t4  (posted by u1,u2,u3,u1)
//! tags:    #rust on t1, t2; #db on t2, t3
//! mentions: t1 -> u2, u3;  t2 -> u2;  t3 -> u1;  t4 -> u2
//! follows: u1->u2, u1->u3, u2->u3, u3->u4, u4->u5, u5->u1, u2->u1
//! ```

use std::sync::Arc;

use arbor_ql::{EngineOptions, QueryEngine, Value};
use arbordb::db::{DbConfig, GraphDb};
use arbordb::NodeId;

struct Fixture {
    db: Arc<GraphDb>,
    users: Vec<NodeId>,
}

fn fixture() -> Fixture {
    let db = GraphDb::open_memory(DbConfig { page_cache_pages: 512, dense_node_threshold: 100 })
        .unwrap();
    let mut tx = db.begin_write().unwrap();
    let users: Vec<NodeId> = (1..=5i64)
        .map(|i| {
            tx.create_node(
                "user",
                &[("uid", Value::Int(i)), ("followers", Value::Int(i * 100))],
            )
            .unwrap()
        })
        .collect();
    let tweets: Vec<NodeId> = (1..=4i64)
        .map(|i| {
            tx.create_node(
                "tweet",
                &[("tid", Value::Int(i)), ("text", Value::Str(format!("tweet {i}")))],
            )
            .unwrap()
        })
        .collect();
    let rust = tx.create_node("hashtag", &[("tag", Value::from("rust"))]).unwrap();
    let dbtag = tx.create_node("hashtag", &[("tag", Value::from("db"))]).unwrap();

    let posts = [(0usize, 0usize), (1, 1), (2, 2), (0, 3)];
    for (u, t) in posts {
        tx.create_rel(users[u], tweets[t], "posts", &[]).unwrap();
    }
    for (t, h) in [(0usize, rust), (1, rust), (1, dbtag), (2, dbtag)] {
        tx.create_rel(tweets[t], h, "tags", &[]).unwrap();
    }
    for (t, u) in [(0usize, 1usize), (0, 2), (1, 1), (2, 0), (3, 1)] {
        tx.create_rel(tweets[t], users[u], "mentions", &[]).unwrap();
    }
    for (a, b) in [(0usize, 1usize), (0, 2), (1, 2), (2, 3), (3, 4), (4, 0), (1, 0)] {
        tx.create_rel(users[a], users[b], "follows", &[]).unwrap();
    }
    tx.commit().unwrap();
    db.create_index("user", "uid").unwrap();
    db.create_index("tweet", "tid").unwrap();
    db.create_index("hashtag", "tag").unwrap();
    Fixture { db: Arc::new(db), users }
}

fn ints(rows: &[Vec<Value>], col: usize) -> Vec<i64> {
    rows.iter().map(|r| r[col].as_int().unwrap()).collect()
}

#[test]
fn q1_selection_with_predicate() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH (u:user) WHERE u.followers > $th RETURN u.uid ORDER BY u.uid",
            &[("th", Value::Int(250))],
        )
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![3, 4, 5]);
    assert_eq!(r.columns, vec!["u.uid"]);
}

#[test]
fn q1_conjunctive_predicates() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH (u:user) WHERE u.followers > 150 AND u.followers < 450 RETURN u.uid ORDER BY u.uid",
            &[],
        )
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![2, 3, 4]);
}

#[test]
fn q2_1_one_step_followees() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH (a:user {uid: $uid})-[:follows]->(f:user) RETURN f.uid ORDER BY f.uid",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![2, 3]);
}

#[test]
fn q2_2_tweets_of_followees() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH (a:user {uid: $uid})-[:follows]->(f)-[:posts]->(t:tweet) \
             RETURN t.tid ORDER BY t.tid",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    // u1 follows u2 (posts t2) and u3 (posts t3).
    assert_eq!(ints(&r.rows, 0), vec![2, 3]);
}

#[test]
fn q2_3_hashtags_of_followees() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH (a:user {uid: $uid})-[:follows]->(f)-[:posts]->(t)-[:tags]->(h:hashtag) \
             RETURN DISTINCT h.tag ORDER BY h.tag",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    let tags: Vec<&str> = r.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(tags, vec!["db", "rust"]);
}

#[test]
fn q3_1_co_mentions() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // Users co-mentioned with u2: tweets mentioning u2 are t1 (also u3), t2
    // (only u2), t4 (only u2) → u3 once.
    let r = ql
        .query(
            "MATCH (a:user {uid: $uid})<-[:mentions]-(t:tweet)-[:mentions]->(b:user) \
             WHERE b.uid <> $uid \
             RETURN b.uid, count(*) AS c ORDER BY c DESC LIMIT 10",
            &[("uid", Value::Int(2))],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(ints(&r.rows, 0), vec![3]);
    assert_eq!(ints(&r.rows, 1), vec![1]);
}

#[test]
fn q4_1_recommendation_not_following() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // 2-step followees of u1: via u2 -> {u3, u1}, via u3 -> {u4}.
    // Excluding already-followed (u2, u3) and u1 itself: u4.
    let r = ql
        .query(
            "MATCH (a:user {uid: $uid})-[:follows]->(f)-[:follows]->(r) \
             WHERE NOT (a)-[:follows]->(r) AND r.uid <> $uid \
             RETURN r.uid, count(*) AS c ORDER BY c DESC LIMIT 10",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![4]);
}

#[test]
fn q4_1_varlength_phrasing_counts_paths() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // Phrasing (a): [:follows*2..2] counts every distinct 2-path.
    let r = ql
        .query(
            "MATCH (a:user {uid: $uid})-[:follows*2..2]->(r) \
             RETURN r.uid, count(*) AS c ORDER BY c DESC, r.uid ASC LIMIT 10",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    // 2-paths from u1: u1->u2->u3, u1->u2->u1, u1->u3->u4.
    let pairs: Vec<(i64, i64)> =
        r.rows.iter().map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap())).collect();
    assert_eq!(pairs, vec![(1, 1), (3, 1), (4, 1)]);
}

#[test]
fn q5_2_potential_influence() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // Posters of tweets mentioning u1 who u1 does NOT follow... wait:
    // potential influence = users mentioning A, not direct followers of A.
    // Tweets mentioning u1: t3 (posted by u3). Is u3 a follower of u1? No
    // (u3 follows u4). So u3 counts.
    let r = ql
        .query(
            "MATCH (p:user)-[:posts]->(t:tweet)-[:mentions]->(a:user {uid: $uid}) \
             WHERE NOT (p)-[:follows]->(a) AND p.uid <> $uid \
             RETURN p.uid, count(*) AS c ORDER BY c DESC LIMIT 10",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![3]);
}

#[test]
fn q6_1_shortest_path() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH p = shortestPath((a:user {uid: $a})-[:follows*..6]-(b:user {uid: $b})) \
             RETURN length(p)",
            &[("a", Value::Int(1)), ("b", Value::Int(5))],
        )
        .unwrap();
    // Undirected: u1 - u5 via the u5->u1 edge = 1 hop.
    assert_eq!(ints(&r.rows, 0), vec![1]);
}

#[test]
fn q6_1_directed_shortest_path() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH p = shortestPath((a:user {uid: $a})-[:follows*..6]->(b:user {uid: $b})) \
             RETURN length(p)",
            &[("a", Value::Int(1)), ("b", Value::Int(5))],
        )
        .unwrap();
    // Directed: u1->u3->u4->u5 = 3 hops.
    assert_eq!(ints(&r.rows, 0), vec![3]);
}

#[test]
fn shortest_path_absent_returns_no_rows() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH p = shortestPath((a:user {uid: $a})-[:posts*..3]-(b:user {uid: $b})) \
             RETURN length(p)",
            &[("a", Value::Int(1)), ("b", Value::Int(5))],
        )
        .unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn plan_cache_hits_with_parameters() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let q = "MATCH (a:user {uid: $uid})-[:follows]->(f) RETURN f.uid";
    for i in 1..=5 {
        let r = ql.query(q, &[("uid", Value::Int(i))]).unwrap();
        assert_eq!(r.stats.plan_cached, i > 1);
    }
    let (hits, misses) = ql.cache_stats();
    assert_eq!((hits, misses), (4, 1));

    // Literal phrasings never share a cache entry.
    ql.clear_cache();
    for i in 1..=3 {
        let text = format!("MATCH (a:user {{uid: {i}}})-[:follows]->(f) RETURN f.uid");
        let r = ql.query(&text, &[]).unwrap();
        assert!(!r.stats.plan_cached);
    }
    let (hits, misses) = ql.cache_stats();
    assert_eq!((hits, misses), (0, 3));
}

#[test]
fn plan_cache_disabled() {
    let f = fixture();
    let ql = QueryEngine::with_options(
        f.db.clone(),
        EngineOptions { plan_cache: false, ..EngineOptions::standard() },
    );
    let q = "MATCH (a:user {uid: $uid})-[:follows]->(f) RETURN f.uid";
    for _ in 0..3 {
        let r = ql.query(q, &[("uid", Value::Int(1))]).unwrap();
        assert!(!r.stats.plan_cached);
    }
}

#[test]
fn db_hits_reported() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH (a:user {uid: $uid})-[:follows]->(f) RETURN f.uid",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    assert!(r.stats.db_hits > 0, "stats: {:?}", r.stats);
    assert_eq!(r.stats.rows, 2);
}

#[test]
fn limit_without_order() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql.query("MATCH (u:user) RETURN u.uid LIMIT 2", &[]).unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn limit_zero() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql.query("MATCH (u:user) RETURN u.uid LIMIT 0", &[]).unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn order_by_two_keys() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // Group by nothing interesting — order users by followers desc.
    let r = ql
        .query("MATCH (u:user) RETURN u.followers AS fl, u.uid AS id ORDER BY fl DESC, id ASC", &[])
        .unwrap();
    assert_eq!(ints(&r.rows, 1), vec![5, 4, 3, 2, 1]);
}

#[test]
fn missing_property_is_null_and_filtered() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // tweets have no `followers` property: predicate never holds.
    let r = ql.query("MATCH (t:tweet) WHERE t.followers > 0 RETURN t.tid", &[]).unwrap();
    assert!(r.rows.is_empty());
    // But projecting it yields nulls.
    let r = ql.query("MATCH (t:tweet) RETURN t.followers LIMIT 1", &[]).unwrap();
    assert!(r.rows[0][0].is_null());
}

#[test]
fn missing_parameter_is_error() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let e = ql.query("MATCH (u:user {uid: $nope}) RETURN u.uid", &[]);
    assert!(e.is_err());
}

#[test]
fn undirected_one_step() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // u1's undirected follows neighborhood: out {u2, u3}, in {u5, u2}.
    let r = ql
        .query(
            "MATCH (a:user {uid: 1})-[:follows]-(x) RETURN DISTINCT x.uid ORDER BY x.uid",
            &[],
        )
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![2, 3, 5]);
}

#[test]
fn label_filter_on_expanded_node() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // All outgoing edges of u1 reach users (follows) and tweets (posts);
    // the :tweet label filter keeps only the tweets.
    let r = ql
        .query("MATCH (a:user {uid: 1})-[]->(t:tweet) RETURN t.tid ORDER BY t.tid", &[])
        .unwrap();
    assert_eq!(ints(&r.rows, 0), vec![1, 4]);
}

#[test]
fn explain_is_stable() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let e1 = ql
        .explain("MATCH (a:user {uid: $uid})-[:follows]->(f) RETURN f.uid")
        .unwrap();
    assert!(e1.contains("NodeIndexSeek"));
    assert!(e1.contains("Expand"));
}

#[test]
fn count_star_total() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql.query("MATCH (u:user) RETURN count(*)", &[]).unwrap();
    assert_eq!(ints(&r.rows, 0), vec![5]);
}

#[test]
fn self_reference_cycle_pattern() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // Mutual follows: (a)-[:follows]->(b) AND (b)-[:follows]->(a).
    let r = ql
        .query(
            "MATCH (a:user)-[:follows]->(b:user) WHERE (b)-[:follows]->(a) \
             RETURN a.uid, b.uid ORDER BY a.uid",
            &[],
        )
        .unwrap();
    // u1<->u2 mutual.
    assert_eq!(r.rows.len(), 2);
    assert_eq!(ints(&r.rows, 0), vec![1, 2]);
    let _ = &f.users;
}

#[test]
fn profile_reports_per_operator_rows() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let p = ql
        .profile(
            "MATCH (a:user {uid: $uid})-[:follows]->(x) WHERE x.uid <> 3 RETURN x.uid",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    // The seek emits 1 row, the expand 2 (u2, u3), the filter 1 (u2).
    let rows: Vec<u64> = p.operators.iter().map(|(_, r)| *r).collect();
    let descs: Vec<&str> = p.operators.iter().map(|(d, _)| d.as_str()).collect();
    assert!(descs.iter().any(|d| d.contains("NodeIndexSeek")), "{descs:?}");
    assert!(descs.iter().any(|d| d.contains("Expand")), "{descs:?}");
    let seek_rows = rows[descs.iter().position(|d| d.contains("NodeIndexSeek")).unwrap()];
    let expand_rows = rows[descs.iter().position(|d| d.contains("Expand")).unwrap()];
    assert_eq!(seek_rows, 1);
    assert_eq!(expand_rows, 2);
    assert_eq!(p.result.rows.len(), 1);
    assert!(p.result.stats.db_hits > 0);
    let rendered = p.render();
    assert!(rendered.contains("rows="), "{rendered}");
    assert!(rendered.contains("total db hits"), "{rendered}");
}

#[test]
fn profile_and_query_agree() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let q = "MATCH (a:user {uid: $uid})<-[:mentions]-(t)-[:mentions]->(b:user) \
             WHERE b.uid <> $uid RETURN b.uid, count(*) AS c ORDER BY c DESC LIMIT 5";
    let params = [("uid", Value::Int(2))];
    let plain = ql.query(q, &params).unwrap();
    let profiled = ql.profile(q, &params).unwrap();
    assert_eq!(plain.rows, profiled.result.rows, "instrumentation must not change results");
}

#[test]
fn relationship_variables_and_type_fn() {
    // Fresh db with edge properties (weights on follows).
    let db = GraphDb::open_memory(DbConfig::default()).unwrap();
    let mut tx = db.begin_write().unwrap();
    let a = tx.create_node("user", &[("uid", Value::Int(1))]).unwrap();
    let b = tx.create_node("user", &[("uid", Value::Int(2))]).unwrap();
    let c = tx.create_node("user", &[("uid", Value::Int(3))]).unwrap();
    tx.create_rel(a, b, "follows", &[("since", Value::Int(2014))]).unwrap();
    tx.create_rel(a, c, "follows", &[("since", Value::Int(2015))]).unwrap();
    tx.create_rel(a, c, "blocks", &[]).unwrap();
    tx.commit().unwrap();
    db.create_index("user", "uid").unwrap();
    let db = Arc::new(db);
    let ql = QueryEngine::new(db);

    // Edge property access + filter.
    let r = ql
        .query(
            "MATCH (a:user {uid: 1})-[r:follows]->(x) WHERE r.since > 2014 \
             RETURN x.uid, r.since",
            &[],
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(3));
    assert_eq!(r.rows[0][1], Value::Int(2015));

    // type(r) over an untyped expansion.
    let r = ql
        .query(
            "MATCH (a:user {uid: 1})-[r]->(x) RETURN type(r), x.uid \
             ORDER BY type(r) ASC, x.uid ASC",
            &[],
        )
        .unwrap();
    let got: Vec<(String, i64)> = r
        .rows
        .iter()
        .map(|row| (row[0].as_str().unwrap().to_owned(), row[1].as_int().unwrap()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("blocks".into(), 3),
            ("follows".into(), 2),
            ("follows".into(), 3)
        ]
    );

    // id(r) is usable and distinct per edge.
    let r = ql
        .query("MATCH (a:user {uid: 1})-[r:follows]->(x) RETURN id(r) ORDER BY id(r)", &[])
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_ne!(r.rows[0][0], r.rows[1][0]);

    // Missing edge property is null.
    let r = ql
        .query("MATCH (a:user {uid: 1})-[r:blocks]->(x) RETURN r.since", &[])
        .unwrap();
    assert!(r.rows[0][0].is_null());

    // Rel var on a var-length pattern is a syntax error.
    assert!(ql.query("MATCH (a)-[r:follows*1..2]->(x) RETURN x", &[]).is_err());
}

// ---------------------------------------------------------------------------
// WITH stages (multi-part queries)
// ---------------------------------------------------------------------------

#[test]
fn with_passthrough_then_expand() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // Equivalent to the plain 2-step query, split at a WITH boundary.
    let staged = ql
        .query(
            "MATCH (a:user {uid: $uid})-[:follows]->(fr) WITH fr \
             MATCH (fr)-[:posts]->(t:tweet) RETURN t.tid ORDER BY t.tid",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    let plain = ql
        .query(
            "MATCH (a:user {uid: $uid})-[:follows]->(fr)-[:posts]->(t:tweet) \
             RETURN t.tid ORDER BY t.tid",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    assert_eq!(staged.rows, plain.rows);
    assert!(!staged.rows.is_empty());
}

#[test]
fn with_alias_renames_variable() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH (a:user {uid: 1})-[:follows]->(fr) WITH fr AS friend \
             MATCH (friend)-[:follows]->(x) RETURN DISTINCT x.uid ORDER BY x.uid",
            &[],
        )
        .unwrap();
    // u1 follows u2, u3; their followees: u2->{u3,u1}, u3->{u4}.
    assert_eq!(ints(&r.rows, 0), vec![1, 3, 4]);
}

#[test]
fn with_where_filters_intermediate() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH (a:user {uid: 1})-[:follows]->(fr) WITH fr WHERE fr.uid > 2 \
             MATCH (fr)-[:posts]->(t) RETURN t.tid",
            &[],
        )
        .unwrap();
    // Only u3 passes the filter; u3 posts t3.
    assert_eq!(ints(&r.rows, 0), vec![3]);
}

#[test]
fn with_computed_value_carries_forward() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    let r = ql
        .query(
            "MATCH (u:user) WITH u, u.followers AS fl WHERE fl > 250 \
             MATCH (u)-[:follows]->(x) RETURN u.uid, fl, x.uid ORDER BY u.uid, x.uid",
            &[],
        )
        .unwrap();
    // Users with >250 followers: u3 (300, follows u4), u4 (400, follows u5),
    // u5 (500, follows u1).
    let triples: Vec<(i64, i64, i64)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row[0].as_int().unwrap(),
                row[1].as_int().unwrap(),
                row[2].as_int().unwrap(),
            )
        })
        .collect();
    assert_eq!(triples, vec![(3, 300, 4), (4, 400, 5), (5, 500, 1)]);
}

#[test]
fn with_aggregation_then_match_on_group_node() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // Count each user's followers, keep the node, then expand it again.
    let r = ql
        .query(
            "MATCH (f:user)-[:follows]->(u:user) WITH u, count(*) AS fans WHERE fans >= 2 \
             MATCH (u)-[:posts]->(t:tweet) RETURN u.uid, fans, t.tid ORDER BY u.uid, t.tid",
            &[],
        )
        .unwrap();
    // In-degrees: u1←{u2,u5}=2, u2←{u1}=1, u3←{u1,u2}=2, u4←{u3}=1, u5←{u4}=1.
    // With ≥2 fans: u1 (posts t1, t4) and u3 (posts t3).
    let triples: Vec<(i64, i64, i64)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row[0].as_int().unwrap(),
                row[1].as_int().unwrap(),
                row[2].as_int().unwrap(),
            )
        })
        .collect();
    assert_eq!(triples, vec![(1, 2, 1), (1, 2, 4), (3, 2, 3)]);
}

#[test]
fn with_distinct_collapses_duplicates() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // Tweets of u1's followees' followees reach u3 twice without DISTINCT.
    let without = ql
        .query(
            "MATCH (a:user {uid: 1})-[:follows]->(x)-[:follows]->(y:user) WITH y \
             MATCH (y)-[:posts]->(t) RETURN t.tid ORDER BY t.tid",
            &[],
        )
        .unwrap();
    let with_distinct = ql
        .query(
            "MATCH (a:user {uid: 1})-[:follows]->(x)-[:follows]->(y:user) WITH DISTINCT y \
             MATCH (y)-[:posts]->(t) RETURN t.tid ORDER BY t.tid",
            &[],
        )
        .unwrap();
    assert!(with_distinct.rows.len() <= without.rows.len());
    let mut dedup = without.rows.clone();
    dedup.dedup();
    assert_eq!(with_distinct.rows, dedup);
}

#[test]
fn with_order_limit_picks_top_group() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // The most-followed user, then their tweets.
    let r = ql
        .query(
            "MATCH (f:user)-[:follows]->(u:user) \
             WITH u, count(*) AS fans ORDER BY fans DESC, u.uid ASC LIMIT 1 \
             MATCH (u)-[:posts]->(t) RETURN u.uid, t.tid ORDER BY t.tid",
            &[],
        )
        .unwrap();
    // Tie between u1 and u3 at 2 fans; uid ascending picks u1 (posts t1,t4).
    let pairs: Vec<(i64, i64)> = r
        .rows
        .iter()
        .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
        .collect();
    assert_eq!(pairs, vec![(1, 1), (1, 4)]);
}

#[test]
fn with_out_of_scope_variable_is_error() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // `a` is not carried through the WITH, so the final RETURN can't see it.
    let e = ql.query(
        "MATCH (a:user {uid: 1})-[:follows]->(fr) WITH fr \
         MATCH (fr)-[:posts]->(t) RETURN a.uid",
        &[],
    );
    assert!(e.is_err(), "out-of-scope variable must be rejected");
}

#[test]
fn recommendation_via_with_matches_canonical() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // The paper's phrasing (b) "collecting the intermediate results and
    // checking them against the results at depth 2" — as an actual staged
    // query.
    let staged = ql
        .query(
            "MATCH (a:user {uid: $uid})-[:follows]->(fr) WITH a, fr \
             MATCH (fr)-[:follows]->(r) \
             WHERE NOT (a)-[:follows]->(r) AND r.uid <> $uid \
             RETURN r.uid, count(*) AS c ORDER BY c DESC, r.uid ASC LIMIT 10",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    let canonical = ql
        .query(
            "MATCH (a:user {uid: $uid})-[:follows]->(fr)-[:follows]->(r) \
             WHERE NOT (a)-[:follows]->(r) AND r.uid <> $uid \
             RETURN r.uid, count(*) AS c ORDER BY c DESC, r.uid ASC LIMIT 10",
            &[("uid", Value::Int(1))],
        )
        .unwrap();
    assert_eq!(staged.rows, canonical.rows);
}

#[test]
fn range_seek_matches_scan_filter_in_both_modes() {
    // Two engines over structurally identical data: one with a followers
    // index (range predicates become NodeIndexRangeSeek), one without
    // (label scan + filter). Every comparison, both orientations, and both
    // executors must agree row-for-row.
    let indexed = fixture();
    indexed.db.create_index("user", "followers").unwrap();
    let plain = fixture();
    let queries = [
        "MATCH (u:user) WHERE u.followers > $th RETURN u.uid ORDER BY u.uid",
        "MATCH (u:user) WHERE u.followers >= $th RETURN u.uid ORDER BY u.uid",
        "MATCH (u:user) WHERE u.followers < $th RETURN u.uid ORDER BY u.uid",
        "MATCH (u:user) WHERE u.followers <= $th RETURN u.uid ORDER BY u.uid",
        "MATCH (u:user) WHERE $th > u.followers RETURN u.uid ORDER BY u.uid",
        "MATCH (u:user) WHERE u.followers > $th AND u.followers < 450 \
         RETURN u.uid ORDER BY u.uid",
        "MATCH (u:user) WHERE u.followers > $th RETURN count(*)",
    ];
    for mode in [arbor_ql::ExecMode::Tuple, arbor_ql::ExecMode::Vectorized] {
        let ql_i = QueryEngine::new(indexed.db.clone());
        let ql_p = QueryEngine::new(plain.db.clone());
        ql_i.set_exec_mode(mode);
        ql_p.set_exec_mode(mode);
        for q in queries {
            for th in [-1i64, 0, 100, 250, 500, 1000] {
                let a = ql_i.query(q, &[("th", Value::Int(th))]).unwrap();
                let b = ql_p.query(q, &[("th", Value::Int(th))]).unwrap();
                assert_eq!(a.rows, b.rows, "mode {mode:?}, query {q}, th {th}");
            }
            // A null bound matches nothing on either path.
            let a = ql_i.query(q, &[("th", Value::Null)]).unwrap();
            let b = ql_p.query(q, &[("th", Value::Null)]).unwrap();
            assert_eq!(a.rows, b.rows, "null bound, mode {mode:?}, query {q}");
        }
    }
}

#[test]
fn range_seek_tracks_live_follower_updates() {
    let f = fixture();
    f.db.create_index("user", "followers").unwrap();
    let ql = QueryEngine::new(f.db.clone());
    let q = "MATCH (u:user) WHERE u.followers > $th RETURN u.uid ORDER BY u.uid";
    assert_eq!(ints(&ql.query(q, &[("th", Value::Int(450))]).unwrap().rows, 0), vec![5]);
    // u1: 100 → 600 followers; the ordered index must move the entry.
    let mut tx = f.db.begin_write().unwrap();
    tx.set_node_prop(f.users[0], "followers", Value::Int(600)).unwrap();
    tx.commit().unwrap();
    assert_eq!(ints(&ql.query(q, &[("th", Value::Int(450))]).unwrap().rows, 0), vec![1, 5]);
}

#[test]
fn in_seek_matches_filter_in_both_modes() {
    // Same data, two planners: pushdown on (IN becomes NodeIdInSeek over the
    // uid index) vs pushdown off (scan + Filter membership). Both exec modes
    // must agree row-for-row on every list shape.
    let f = fixture();
    let seek = QueryEngine::new(f.db.clone());
    let filt = QueryEngine::with_options(
        f.db.clone(),
        EngineOptions {
            planner: arbor_ql::PlannerOptions {
                predicate_pushdown: false,
                ..Default::default()
            },
            ..EngineOptions::standard()
        },
    );
    let q = "MATCH (u:user) WHERE u.uid IN $uids RETURN u.uid ORDER BY u.uid";
    let lists: &[Vec<Value>] = &[
        vec![Value::Int(3), Value::Int(1)],
        vec![Value::Int(2), Value::Int(2), Value::Int(2)],
        vec![Value::Int(99), Value::Int(4)],
        vec![Value::Null, Value::Int(5)],
        vec![],
    ];
    for mode in [arbor_ql::ExecMode::Tuple, arbor_ql::ExecMode::Vectorized] {
        seek.set_exec_mode(mode);
        filt.set_exec_mode(mode);
        for list in lists {
            let p = [("uids", Value::List(list.clone()))];
            let a = seek.query(q, &p).unwrap();
            let b = filt.query(q, &p).unwrap();
            assert_eq!(a.rows, b.rows, "mode {mode:?}, list {list:?}");
        }
        // Null list behaves like an empty one on both paths.
        let p = [("uids", Value::Null)];
        assert!(seek.query(q, &p).unwrap().rows.is_empty());
        assert!(filt.query(q, &p).unwrap().rows.is_empty());
    }
}

#[test]
fn in_seek_drives_multi_hop_kernels() {
    // The batched-kernel shape: anchor a whole uid list and expand. IN [..]
    // duplicates must not double-count rows (the grouped tally below would
    // drift if the seek emitted an anchor twice).
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    for mode in [arbor_ql::ExecMode::Tuple, arbor_ql::ExecMode::Vectorized] {
        ql.set_exec_mode(mode);
        let r = ql
            .query(
                "MATCH (a:user)-[:posts]->(t:tweet) WHERE a.uid IN $uids \
                 RETURN a.uid, t.tid ORDER BY a.uid, t.tid",
                &[("uids", Value::from(&[3i64, 1, 1][..]))],
            )
            .unwrap();
        let pairs: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(pairs, vec![(1, 1), (1, 4), (3, 3)], "mode {mode:?}");

        let counts = ql
            .query(
                "MATCH (a:user)-[:follows]->(f:user) WHERE a.uid IN [2, 1, 2] \
                 RETURN a.uid, count(*) AS c ORDER BY a.uid",
                &[],
            )
            .unwrap();
        let tallies: Vec<(i64, i64)> = counts
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(tallies, vec![(1, 2), (2, 2)], "mode {mode:?}");
    }
}

#[test]
fn in_seek_plan_shape_and_estimate() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    // Literal list: the multi-anchor seek is the source and estimates one
    // row per distinct key.
    let d = ql
        .describe("MATCH (u:user) WHERE u.uid IN [1, 2, 3] RETURN u.uid ORDER BY u.uid")
        .unwrap();
    assert!(d.contains("NodeIdInSeek(:user {uid IN …})"), "describe:\n{d}");
    // Parameter list: still a seek (the cost model assumes a small batch).
    let d = ql
        .describe("MATCH (u:user) WHERE u.uid IN $uids RETURN u.uid ORDER BY u.uid")
        .unwrap();
    assert!(d.contains("NodeIdInSeek(:user {uid IN …})"), "describe:\n{d}");
    // Multi-hop: a short anchor list out-costs scanning the other end, so
    // the cost-based planner roots the plan at the seek.
    let d = ql
        .describe(
            "MATCH (a:user)-[:posts]->(t:tweet) WHERE a.uid IN [1, 3] \
             RETURN a.uid, t.tid ORDER BY a.uid, t.tid",
        )
        .unwrap();
    assert!(d.contains("NodeIdInSeek(:user {uid IN …})"), "describe:\n{d}");
    // No index on the key → membership stays a Filter, not a seek.
    let d = ql
        .describe("MATCH (u:user) WHERE u.followers IN [100, 300] RETURN u.uid")
        .unwrap();
    assert!(!d.contains("NodeIdInSeek"), "describe:\n{d}");
}

#[test]
fn in_empty_list_yields_empty_not_error() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    for mode in [arbor_ql::ExecMode::Tuple, arbor_ql::ExecMode::Vectorized] {
        ql.set_exec_mode(mode);
        let r = ql
            .query(
                "MATCH (u:user) WHERE u.uid IN $uids RETURN u.uid",
                &[("uids", Value::List(vec![]))],
            )
            .unwrap();
        assert!(r.rows.is_empty(), "mode {mode:?}");
        let r = ql.query("MATCH (u:user) WHERE u.uid IN [] RETURN u.uid", &[]).unwrap();
        assert!(r.rows.is_empty(), "mode {mode:?}");
    }
}

#[test]
fn in_non_list_operand_is_a_plan_error() {
    let f = fixture();
    let ql = QueryEngine::new(f.db.clone());
    for mode in [arbor_ql::ExecMode::Tuple, arbor_ql::ExecMode::Vectorized] {
        ql.set_exec_mode(mode);
        let err = ql
            .query(
                "MATCH (u:user) WHERE u.uid IN $uids RETURN u.uid",
                &[("uids", Value::Int(3))],
            )
            .unwrap_err();
        assert!(err.to_string().contains("IN requires a list"), "mode {mode:?}: {err}");
    }
}
