//! Parser robustness: arbitrary input must never panic — only `Err`.

use arbor_ql::parser::parse;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totally arbitrary strings: parse returns, never panics.
    #[test]
    fn arbitrary_strings_never_panic(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Query-shaped garbage: random token soup from the language's alphabet.
    #[test]
    fn token_soup_never_panics(words in prop::collection::vec(
        prop_oneof![
            Just("MATCH".to_string()), Just("WHERE".to_string()),
            Just("RETURN".to_string()), Just("WITH".to_string()),
            Just("ORDER".to_string()), Just("BY".to_string()),
            Just("LIMIT".to_string()), Just("DISTINCT".to_string()),
            Just("AND".to_string()), Just("NOT".to_string()),
            Just("count(*)".to_string()), Just("shortestPath".to_string()),
            Just("(".to_string()), Just(")".to_string()),
            Just("[".to_string()), Just("]".to_string()),
            Just("{".to_string()), Just("}".to_string()),
            Just(":".to_string()), Just(",".to_string()),
            Just("-".to_string()), Just("->".to_string()),
            Just("<-".to_string()), Just("*".to_string()),
            Just("..".to_string()), Just("=".to_string()),
            Just("<>".to_string()), Just("$p".to_string()),
            Just("a".to_string()), Just("user".to_string()),
            Just("follows".to_string()), Just("a.uid".to_string()),
            Just("42".to_string()), Just("'str'".to_string()),
        ], 0..40)) {
        let text = words.join(" ");
        let _ = parse(&text);
    }

    /// Valid queries keep parsing after round-tripping their whitespace.
    #[test]
    fn whitespace_insensitive(extra in "[ \t\n]{0,5}") {
        let q = format!(
            "MATCH{extra} (a:user {{uid: 1}})-[:follows]->(b){extra} RETURN b.uid{extra} LIMIT 3"
        );
        prop_assert!(parse(&q).is_ok(), "{q:?}");
    }
}
