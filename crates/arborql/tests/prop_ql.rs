//! Property tests: declarative queries against imperative reference
//! computations on random multigraphs.

use std::collections::HashMap;
use std::sync::Arc;

use arbor_ql::{QueryEngine, Value};
use arbordb::db::{DbConfig, GraphDb};
use arbordb::{Direction, NodeId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Spec {
    users: usize,
    follows: Vec<(usize, usize)>,
    followers_attr: Vec<i64>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (2usize..14).prop_flat_map(|users| {
        (
            prop::collection::vec((0..users, 0..users), 0..50),
            prop::collection::vec(0i64..100, users..=users),
        )
            .prop_map(move |(follows, followers_attr)| Spec { users, follows, followers_attr })
    })
}

fn build(s: &Spec) -> (Arc<GraphDb>, Vec<NodeId>) {
    let db = GraphDb::open_memory(DbConfig { page_cache_pages: 128, dense_node_threshold: 4 })
        .unwrap();
    let mut tx = db.begin_write().unwrap();
    let nodes: Vec<NodeId> = (0..s.users)
        .map(|i| {
            tx.create_node(
                "user",
                &[
                    ("uid", Value::Int(i as i64)),
                    ("followers", Value::Int(s.followers_attr[i])),
                ],
            )
            .unwrap()
        })
        .collect();
    for &(a, b) in &s.follows {
        tx.create_rel(nodes[a], nodes[b], "follows", &[]).unwrap();
    }
    tx.commit().unwrap();
    db.create_index("user", "uid").unwrap();
    (Arc::new(db), nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `MATCH (a {uid})-[:follows]->(f)` equals the core-API neighborhood.
    #[test]
    fn ql_adjacency_matches_api(s in spec()) {
        let (db, nodes) = build(&s);
        let ql = QueryEngine::new(db.clone());
        let follows = db.rel_type_id("follows");
        for (i, &n) in nodes.iter().enumerate() {
            let r = ql
                .query(
                    "MATCH (a:user {uid: $uid})-[:follows]->(f) RETURN f.uid ORDER BY f.uid",
                    &[("uid", Value::Int(i as i64))],
                )
                .unwrap();
            let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
            let mut expect: Vec<i64> = db
                .neighbors(n, follows, Direction::Outgoing)
                .map(|x| db.node_prop(x.unwrap(), "uid").unwrap().unwrap().as_int().unwrap())
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect, "uid {}", i);
        }
    }

    /// Selection with a range predicate equals a direct scan.
    #[test]
    fn ql_selection_matches_scan(s in spec(), th in 0i64..100) {
        let (db, _nodes) = build(&s);
        let ql = QueryEngine::new(db.clone());
        let r = ql
            .query(
                "MATCH (u:user) WHERE u.followers > $th RETURN u.uid ORDER BY u.uid",
                &[("th", Value::Int(th))],
            )
            .unwrap();
        let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        let mut expect: Vec<i64> = s
            .followers_attr
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > th)
            .map(|(i, _)| i as i64)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Grouped counting equals a reference count over edges, and the TopN
    /// ordering invariant holds.
    #[test]
    fn ql_group_count_matches_reference(s in spec()) {
        let (db, _nodes) = build(&s);
        let ql = QueryEngine::new(db);
        let r = ql
            .query(
                "MATCH (a:user)-[:follows]->(b:user) \
                 RETURN b.uid, count(*) AS c ORDER BY c DESC, b.uid ASC LIMIT 5",
                &[],
            )
            .unwrap();
        let mut expect: HashMap<i64, i64> = HashMap::new();
        for &(_, b) in &s.follows {
            *expect.entry(b as i64).or_insert(0) += 1;
        }
        let mut pairs: Vec<(i64, i64)> = expect.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(5);
        let got: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(got, pairs);
    }

    /// Variable-length paths count exactly the 2-paths of the graph.
    #[test]
    fn ql_varlength_counts_two_paths(s in spec(), start in 0usize..14) {
        let start = start % s.users;
        let (db, _nodes) = build(&s);
        let ql = QueryEngine::new(db);
        let r = ql
            .query(
                "MATCH (a:user {uid: $uid})-[:follows*2..2]->(r) RETURN count(*)",
                &[("uid", Value::Int(start as i64))],
            )
            .unwrap();
        let got = r.rows[0][0].as_int().unwrap();
        // Reference: ordered pairs of distinct edges forming a 2-path.
        let mut expect = 0i64;
        for (e1, &(a, b)) in s.follows.iter().enumerate() {
            if a != start {
                continue;
            }
            for (e2, &(c, _)) in s.follows.iter().enumerate() {
                if e1 != e2 && c == b {
                    expect += 1;
                }
            }
        }
        prop_assert_eq!(got, expect);
    }
}
