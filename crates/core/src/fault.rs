//! Deterministic fault injection + retry/deadline/degradation semantics.
//!
//! The serving story so far assumed every shard answers every call. This
//! module makes the failure half of that story testable — *without* wall
//! clocks, sleeps or randomness at run time, so every chaos run is exactly
//! reproducible:
//!
//! * [`FaultPlan`] — a seeded schedule of faults. Whether a given engine
//!   call faults is a pure hash of `(plan seed, wrapper salt, method name,
//!   argument key, retry attempt)`; nothing else feeds the decision.
//! * [`ChaosEngine`] — wraps any inner [`MicroblogEngine`] and consults the
//!   plan **before** delegating, so a faulted call never half-applies a
//!   write and an injected panic never unwinds while the inner engine holds
//!   a lock. Faults manifest as [`CoreError::Unavailable`] or (with
//!   [`FaultPlan::panic_bias`] > 0) as panics.
//! * [`RetryPolicy`] / [`DegradationMode`] — how the sharded merge layer
//!   (`crate::shard`) responds: bounded retries with deterministic
//!   exponential backoff charged against a **virtual** per-query deadline
//!   budget (microseconds of modelled time, not wall time), and an opt-in
//!   partial-results mode for scatter queries.
//! * Ambient request state — thread-locals carrying the current retry
//!   attempt, the remaining deadline budget and the scatter coverage of the
//!   in-flight request. They are per-thread and saved/restored on nesting,
//!   so concurrent serving threads never observe each other.
//!
//! The headline invariant (pinned by `tests/chaos_serving.rs`): under a
//! purely transient plan, with retries enabled, every query's answer is
//! **byte-identical** to the fault-free run — and the fault counters in the
//! serving report are identical at any reader thread count.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::engine::{MicroblogEngine, Ranked};
use crate::{CoreError, Result};

// ---- deterministic hashing ----------------------------------------------

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a string (method names, tags).
fn fnv(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Maps a hash to [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Argument keys: fold whatever identifies a call into one u64 so the
/// fault schedule distinguishes calls without caring about types. The
/// same keys route replicated reads ([`crate::shard::replica_of`]), so
/// they are public: tests predict a query's primary replica with them.
pub fn key_u64(x: u64) -> u64 {
    mix(x)
}

/// [`key_u64`] for signed ids (uids, tids, thresholds).
pub fn key_i64(x: i64) -> u64 {
    mix(x as u64)
}

/// Argument key for a string argument (tags, method names).
pub fn key_str(s: &str) -> u64 {
    fnv(s)
}

/// Argument key for an id-list argument (batched kernel uid lists).
pub fn key_slice(xs: &[i64]) -> u64 {
    xs.iter().fold(0x51AF_D0A3_BAAD_F00Du64, |acc, &x| mix(acc ^ x as u64))
}

/// Argument key for a string-list argument.
pub fn key_str_slice(xs: &[String]) -> u64 {
    xs.iter().fold(0x6B5F_23C1_0DDB_A11Cu64, |acc, x| mix(acc ^ fnv(x)))
}

/// Combines two argument keys into one (order-sensitive).
pub fn key2(a: u64, b: u64) -> u64 {
    mix(a ^ mix(b))
}

// ---- the fault schedule --------------------------------------------------

/// A seeded, wall-clock-free fault schedule.
///
/// Rates are probabilities per gated engine call; latencies are **virtual
/// microseconds** charged against the ambient deadline budget (when one is
/// installed) — chaos runs never sleep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Root seed; every decision hash mixes it in.
    pub seed: u64,
    /// Probability that a call is transiently faulted.
    pub transient_rate: f64,
    /// How many consecutive attempts a transient fault survives. A call
    /// picked by `transient_rate` fails on attempts `0..transient_burst`
    /// and succeeds from attempt `transient_burst` on — so any
    /// [`RetryPolicy`] with `max_attempts > transient_burst` fully masks
    /// transient faults.
    pub transient_burst: u32,
    /// Probability that a call is permanently faulted (fails every
    /// attempt; retries cannot mask it).
    pub permanent_rate: f64,
    /// Given a fault, probability it manifests as a panic instead of an
    /// `Unavailable` error. Injected panics carry a payload starting with
    /// [`INJECTED_PANIC_PREFIX`].
    pub panic_bias: f64,
    /// Virtual cost charged to the deadline budget per gated call.
    pub call_latency_us: u64,
    /// Extra virtual cost charged when a call faults (slow failure).
    pub fault_latency_us: u64,
}

impl FaultPlan {
    /// A no-fault plan (useful as a baseline: same wrapper, zero injection).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            transient_burst: 0,
            permanent_rate: 0.0,
            panic_bias: 0.0,
            call_latency_us: 0,
            fault_latency_us: 0,
        }
    }

    /// Transient-only chaos: ~8% of calls fail their first two attempts
    /// (some as panics), then recover. The default [`RetryPolicy`]
    /// (4 attempts) masks every fault this plan injects.
    pub fn transient(seed: u64) -> Self {
        FaultPlan {
            transient_rate: 0.08,
            transient_burst: 2,
            panic_bias: 0.2,
            call_latency_us: 10,
            fault_latency_us: 50,
            ..FaultPlan::new(seed)
        }
    }

    /// Hostile chaos: transient faults plus ~4% permanent shard failures
    /// and a higher panic share. Retries cannot mask the permanent part —
    /// this is the plan that exercises degradation and typed errors.
    pub fn hostile(seed: u64) -> Self {
        FaultPlan {
            permanent_rate: 0.04,
            panic_bias: 0.35,
            ..FaultPlan::transient(seed)
        }
    }

    /// Builder: override the panic share of injected faults.
    pub fn with_panic_bias(mut self, bias: f64) -> Self {
        self.panic_bias = bias;
        self
    }

    fn is_noop(&self) -> bool {
        self.transient_rate == 0.0
            && self.permanent_rate == 0.0
            && self.call_latency_us == 0
            && self.fault_latency_us == 0
    }

    /// The schedule itself: what happens to `(salt, method, args_key)` at
    /// `attempt`. Pure — this is the whole determinism argument.
    fn decide(&self, salt: u64, method: &str, args_key: u64, attempt: u32) -> Outcome {
        let h = mix(self.seed ^ mix(salt ^ 0xA076_1D64_78BD_642F) ^ fnv(method) ^ args_key);
        let r1 = unit(h);
        let r2 = unit(mix(h ^ 0xD6E8_FEB8_6659_FD93));
        let panics = r2 < self.panic_bias;
        if r1 < self.permanent_rate {
            Outcome::Permanent { panics }
        } else if r1 < self.permanent_rate + self.transient_rate && attempt < self.transient_burst {
            Outcome::Transient { panics }
        } else {
            Outcome::Healthy
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Healthy,
    Transient { panics: bool },
    Permanent { panics: bool },
}

// ---- fault accounting -----------------------------------------------------

/// A snapshot of fault-layer counters — injected on the chaos side, handled
/// on the retry side. Reported through
/// [`MicroblogEngine::fault_stats`] and folded into serving reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults injected as `Unavailable` errors.
    pub injected_errors: u64,
    /// Faults injected as panics.
    pub injected_panics: u64,
    /// Retry attempts the merge layer spent recovering.
    pub retries: u64,
    /// Shard-call panics the merge layer caught and converted to
    /// `Unavailable`.
    pub panics_caught: u64,
    /// Shard calls that exhausted their retry budget.
    pub exhausted: u64,
    /// Hedged (re-issued) shard calls: the primary exceeded the virtual
    /// straggler threshold, so a backup attempt was raced against it.
    pub hedges: u64,
    /// Hedges whose backup attempt finished first (in virtual time).
    pub hedge_wins: u64,
    /// Scatter shard calls shed at a deadline in `Partial` mode (counted
    /// as unanswered coverage instead of failing the whole query).
    pub shed: u64,
    /// Failover hops: shard calls re-routed to the next replica in the
    /// group after the previous replica stayed `Unavailable` (DESIGN.md
    /// §4i). Counted per hop, so a call that walks past two dead replicas
    /// counts twice.
    pub failovers: u64,
    /// Read shard calls whose deterministic primary was a non-zero
    /// replica — the share of read traffic the replica groups absorbed
    /// beyond what a single-replica deployment would serve.
    pub replica_reads: u64,
}

impl FaultStats {
    /// Field-wise sum (folding a wrapper's own counters into its inner's).
    pub fn plus(&self, other: &FaultStats) -> FaultStats {
        FaultStats {
            injected_errors: self.injected_errors + other.injected_errors,
            injected_panics: self.injected_panics + other.injected_panics,
            retries: self.retries + other.retries,
            panics_caught: self.panics_caught + other.panics_caught,
            exhausted: self.exhausted + other.exhausted,
            hedges: self.hedges + other.hedges,
            hedge_wins: self.hedge_wins + other.hedge_wins,
            shed: self.shed + other.shed,
            failovers: self.failovers + other.failovers,
            replica_reads: self.replica_reads + other.replica_reads,
        }
    }

    /// Field-wise saturating delta (`self` after, `earlier` before) — how a
    /// serving run attributes faults to itself.
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            injected_errors: self.injected_errors.saturating_sub(earlier.injected_errors),
            injected_panics: self.injected_panics.saturating_sub(earlier.injected_panics),
            retries: self.retries.saturating_sub(earlier.retries),
            panics_caught: self.panics_caught.saturating_sub(earlier.panics_caught),
            exhausted: self.exhausted.saturating_sub(earlier.exhausted),
            hedges: self.hedges.saturating_sub(earlier.hedges),
            hedge_wins: self.hedge_wins.saturating_sub(earlier.hedge_wins),
            shed: self.shed.saturating_sub(earlier.shed),
            failovers: self.failovers.saturating_sub(earlier.failovers),
            replica_reads: self.replica_reads.saturating_sub(earlier.replica_reads),
        }
    }

    /// Total faults injected (errors + panics).
    pub fn total_injected(&self) -> u64 {
        self.injected_errors + self.injected_panics
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} errors + {} panics, {} retries, {} panics caught, {} exhausted, \
             {} hedges ({} won), {} shed, {} failovers, {} replica reads",
            self.injected_errors,
            self.injected_panics,
            self.retries,
            self.panics_caught,
            self.exhausted,
            self.hedges,
            self.hedge_wins,
            self.shed,
            self.failovers,
            self.replica_reads
        )
    }
}

/// Shared atomic fault counters (one set per chaos wrapper, one per sharded
/// merge layer). Relaxed ordering — counters are monotone tallies, not
/// synchronization.
#[derive(Debug, Default)]
pub struct FaultCounters {
    injected_errors: AtomicU64,
    injected_panics: AtomicU64,
    retries: AtomicU64,
    panics_caught: AtomicU64,
    exhausted: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    shed: AtomicU64,
    failovers: AtomicU64,
    replica_reads: AtomicU64,
}

impl FaultCounters {
    /// Records an injected `Unavailable`.
    pub fn note_injected_error(&self) {
        self.injected_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an injected panic.
    pub fn note_injected_panic(&self) {
        self.injected_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry attempt.
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a caught shard-call panic.
    pub fn note_panic_caught(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a shard call that ran out of retry attempts.
    pub fn note_exhausted(&self) {
        self.exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a hedged (re-issued) shard call.
    pub fn note_hedge(&self) {
        self.hedges.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a hedge whose backup attempt won the virtual-time race.
    pub fn note_hedge_win(&self) {
        self.hedge_wins.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a scatter shard call shed at a deadline in `Partial` mode.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failover hop to the next replica in a group.
    pub fn note_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a read shard call routed to a non-zero primary replica.
    pub fn note_replica_read(&self) {
        self.replica_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads all counters.
    pub fn snapshot(&self) -> FaultStats {
        FaultStats {
            injected_errors: self.injected_errors.load(Ordering::Relaxed),
            injected_panics: self.injected_panics.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            replica_reads: self.replica_reads.load(Ordering::Relaxed),
        }
    }
}

// ---- retry + degradation policy ------------------------------------------

/// Bounded-retry policy for shard calls, with deterministic exponential
/// backoff charged to the virtual deadline budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per shard call (1 = no retries).
    pub max_attempts: u32,
    /// Backoff charged after the first failed attempt, in virtual µs.
    pub backoff_base_us: u64,
    /// Cap on a single backoff charge.
    pub backoff_cap_us: u64,
    /// Default per-query deadline budget installed when no ambient budget
    /// is active (the serving layer installs its own per request).
    pub deadline_us: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff_base_us: 100, backoff_cap_us: 5_000, deadline_us: None }
    }
}

impl RetryPolicy {
    /// No retries, no backoff, no deadline — fail on first error.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, backoff_base_us: 0, backoff_cap_us: 0, deadline_us: None }
    }

    /// Builder: per-query deadline budget in virtual µs.
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Backoff to charge after failed attempt `attempt` (0-based):
    /// `base * 2^attempt`, capped.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        self.backoff_base_us
            .checked_shl(attempt.min(32))
            .unwrap_or(u64::MAX)
            .min(self.backoff_cap_us)
    }
}

/// What the sharded merge layer does when a scatter shard stays down after
/// all retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationMode {
    /// Propagate the typed error. The default — and the only mode allowed
    /// inside the cross-engine equivalence matrix, because it never changes
    /// an answer.
    #[default]
    Strict,
    /// Skip dead shards on scatter queries and answer from the rest,
    /// tagging the result's [`Coverage`]. Point lookups and writes never
    /// degrade — their single owner shard is not optional.
    Partial,
}

/// How much of a scatter fan-out actually answered, accumulated over one
/// request. `answered == total` means the answer is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Coverage {
    /// Shard calls that answered.
    pub answered: u32,
    /// Shard calls attempted.
    pub total: u32,
}

impl Coverage {
    /// True when at least one shard call went unanswered.
    pub fn is_partial(&self) -> bool {
        self.answered < self.total
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.answered, self.total)
    }
}

// ---- ambient request state (thread-local) ---------------------------------

thread_local! {
    /// Current retry attempt of the in-flight shard call (0 = first try).
    static ATTEMPT: Cell<u32> = const { Cell::new(0) };
    /// Remaining virtual-µs deadline budget of the in-flight request.
    static BUDGET: Cell<Option<i64>> = const { Cell::new(None) };
    /// (answered, attempted) scatter shard calls of the in-flight request.
    static COVERAGE: Cell<(u32, u32)> = const { Cell::new((0, 0)) };
    /// Largest single scatter fan-out of the in-flight request.
    static MAX_FANOUT: Cell<u32> = const { Cell::new(0) };
}

/// The ambient retry attempt ([`FaultPlan::transient_burst`] reads it).
pub fn current_attempt() -> u32 {
    ATTEMPT.with(Cell::get)
}

/// Runs `f` with the ambient attempt set to `attempt`, restoring the
/// previous value even when `f` panics (injected panics unwind through
/// here before the merge layer catches them).
pub fn with_attempt<R>(attempt: u32, f: impl FnOnce() -> R) -> R {
    struct Restore(u32);
    impl Drop for Restore {
        fn drop(&mut self) {
            ATTEMPT.with(|a| a.set(self.0));
        }
    }
    let _g = Restore(ATTEMPT.with(|a| a.replace(attempt)));
    f()
}

/// Charges `us` virtual microseconds against the ambient deadline budget.
/// No-op without a budget; with one, exhaustion pins the budget at zero and
/// returns [`CoreError::Timeout`] (which is not retryable — retrying cannot
/// create more budget).
pub fn charge(us: u64) -> Result<()> {
    BUDGET.with(|b| match b.get() {
        None => Ok(()),
        Some(remaining) => {
            let next = remaining - us.min(i64::MAX as u64) as i64;
            if next < 0 {
                b.set(Some(0));
                Err(CoreError::Timeout(format!(
                    "deadline budget exhausted ({remaining}us left, {us}us needed)"
                )))
            } else {
                b.set(Some(next));
                Ok(())
            }
        }
    })
}

/// Remaining virtual-µs budget, when one is installed.
pub fn remaining_budget_us() -> Option<u64> {
    BUDGET.with(Cell::get).map(|b| b.max(0) as u64)
}

/// What one request accumulated in its ambient scope: scatter coverage plus
/// the widest single fan-out it issued (how many shards one scatter
/// addressed at once — the parallelism the scatter executor can exploit).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RequestStats {
    /// Scatter shard-call coverage over the whole request.
    pub coverage: Coverage,
    /// Largest single scatter fan-out of the request.
    pub max_fanout: u32,
}

/// Runs one request under a fresh deadline budget and coverage scope,
/// returning `f`'s result plus the [`RequestStats`] it accumulated.
/// Previous ambient state is saved and restored, so nested/concurrent
/// requests never interfere. This is the serving layer's per-request entry
/// point.
pub fn with_request_budget<R>(
    deadline_us: Option<u64>,
    f: impl FnOnce() -> R,
) -> (R, RequestStats) {
    struct Restore {
        budget: Option<i64>,
        cov: (u32, u32),
        fanout: u32,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.budget));
            COVERAGE.with(|c| c.set(self.cov));
            MAX_FANOUT.with(|m| m.set(self.fanout));
        }
    }
    let guard = Restore {
        budget: BUDGET.with(|b| b.replace(deadline_us.map(|d| d.min(i64::MAX as u64) as i64))),
        cov: COVERAGE.with(|c| c.replace((0, 0))),
        fanout: MAX_FANOUT.with(|m| m.replace(0)),
    };
    let out = f();
    let (answered, total) = COVERAGE.with(Cell::get);
    let max_fanout = MAX_FANOUT.with(Cell::get);
    drop(guard);
    (out, RequestStats { coverage: Coverage { answered, total }, max_fanout })
}

/// Installs `deadline_us` as the budget only when no ambient budget is
/// active — how a [`RetryPolicy::deadline_us`] applies to direct engine
/// calls without overriding a serving-layer request budget.
pub fn with_fallback_budget<R>(deadline_us: Option<u64>, f: impl FnOnce() -> R) -> R {
    let installed = BUDGET.with(|b| {
        if b.get().is_none() {
            if let Some(d) = deadline_us {
                b.set(Some(d.min(i64::MAX as u64) as i64));
                return true;
            }
        }
        false
    });
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            if self.0 {
                BUDGET.with(|b| b.set(None));
            }
        }
    }
    let _g = Restore(installed);
    f()
}

/// Records one scatter shard-call outcome into the ambient coverage.
pub fn note_shard(answered: bool) {
    COVERAGE.with(|c| {
        let (a, t) = c.get();
        c.set((a + answered as u32, t + 1));
    });
}

/// Records a scatter fan-out width into the ambient max-fanout tracker.
pub fn note_fanout(shards: u32) {
    MAX_FANOUT.with(|m| m.set(m.get().max(shards)));
}

// ---- worker-side ambient state (parallel scatter) -------------------------

/// What one parallel shard call consumed and observed on its worker thread,
/// shipped back to the gathering caller so ambient accounting stays
/// identical to the sequential path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSpend {
    /// Virtual µs consumed from the budget snapshot the worker was handed.
    pub spent_us: u64,
    /// Nested scatter shard calls that answered on the worker.
    pub answered: u32,
    /// Nested scatter shard calls attempted on the worker.
    pub total: u32,
    /// Largest nested scatter fan-out issued on the worker.
    pub max_fanout: u32,
}

/// Runs one shard call on a worker thread under a **snapshot** of the
/// caller's remaining deadline budget, returning `f`'s result plus the
/// [`WorkerSpend`] the call accumulated. Each concurrent worker gets the
/// same snapshot; the caller then charges the **max** spend across workers
/// to its own ambient budget — fan-out latency is the slowest shard, not
/// the sum. `snapshot == None` (no ambient budget) makes charging free on
/// the worker too, and `spent_us` reports 0.
///
/// Worker thread-locals are saved and restored, so persistent pool workers
/// never leak one call's state into the next.
pub fn with_worker_budget<R>(snapshot: Option<u64>, f: impl FnOnce() -> R) -> (R, WorkerSpend) {
    struct Restore {
        budget: Option<i64>,
        cov: (u32, u32),
        fanout: u32,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.budget));
            COVERAGE.with(|c| c.set(self.cov));
            MAX_FANOUT.with(|m| m.set(self.fanout));
        }
    }
    let installed = snapshot.map(|d| d.min(i64::MAX as u64) as i64);
    let guard = Restore {
        budget: BUDGET.with(|b| b.replace(installed)),
        cov: COVERAGE.with(|c| c.replace((0, 0))),
        fanout: MAX_FANOUT.with(|m| m.replace(0)),
    };
    let out = f();
    let remaining = BUDGET.with(Cell::get).unwrap_or(0).max(0) as u64;
    let spent_us = installed.map_or(0, |start| start as u64 - remaining);
    let (answered, total) = COVERAGE.with(Cell::get);
    let max_fanout = MAX_FANOUT.with(Cell::get);
    drop(guard);
    (out, WorkerSpend { spent_us, answered, total, max_fanout })
}

/// Folds a worker's nested coverage and fan-out observations into the
/// caller's ambient scope (the virtual-time spend is charged separately,
/// as a max across workers). Called during the in-shard-order gather, so
/// the fold order — like everything else about the merge — is independent
/// of worker interleaving.
pub fn absorb_worker_spend(spend: &WorkerSpend) {
    COVERAGE.with(|c| {
        let (a, t) = c.get();
        c.set((a + spend.answered, t + spend.total));
    });
    note_fanout(spend.max_fanout);
}

// ---- the chaos wrapper ----------------------------------------------------

/// Panic payloads injected by [`ChaosEngine`] start with this prefix, so a
/// panic hook can tell scheduled chaos from genuine bugs.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// Installs a process-wide panic hook that swallows the default "thread
/// panicked" diagnostics for **injected** panics only (payloads starting
/// with [`INJECTED_PANIC_PREFIX`]); every other panic still reaches the
/// previous hook. Idempotent. Chaos tests and examples call this so
/// scheduled faults don't spray stderr.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with(INJECTED_PANIC_PREFIX));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// A fault-injecting wrapper around any inner engine.
///
/// Every workload method consults the [`FaultPlan`] **before** delegating:
/// a faulted call returns/panics without touching the inner engine, so
/// retried writes are never double-applied and injected panics never unwind
/// through engine internals. Instrumentation methods (`name`,
/// `reset_stats`, `ops_count`, `drop_caches`, `fault_stats`) are never
/// gated — operators can always observe a sick shard.
pub struct ChaosEngine {
    inner: Box<dyn MicroblogEngine>,
    plan: FaultPlan,
    salt: u64,
    name: &'static str,
    counters: FaultCounters,
}

impl ChaosEngine {
    /// Wraps `inner` under `plan`. `salt` distinguishes wrappers sharing a
    /// plan (the sharded builders use the shard index), so shards fault
    /// independently.
    pub fn new(inner: Box<dyn MicroblogEngine>, plan: FaultPlan, salt: u64) -> Self {
        let name: &'static str =
            Box::leak(format!("chaos[{}]", inner.name()).into_boxed_str());
        ChaosEngine { inner, plan, salt, name, counters: FaultCounters::default() }
    }

    /// The plan this wrapper runs under.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault schedule gate, run before every delegated call.
    fn gate(&self, method: &'static str, args_key: u64) -> Result<()> {
        if self.plan.is_noop() {
            return Ok(());
        }
        charge(self.plan.call_latency_us)?;
        let attempt = current_attempt();
        let outcome = self.plan.decide(self.salt, method, args_key, attempt);
        let (kind, panics) = match outcome {
            Outcome::Healthy => return Ok(()),
            Outcome::Transient { panics } => ("transient", panics),
            Outcome::Permanent { panics } => ("permanent", panics),
        };
        charge(self.plan.fault_latency_us)?;
        if panics {
            self.counters.note_injected_panic();
            panic!(
                "{INJECTED_PANIC_PREFIX} {kind} {method} on {} (salt {}, attempt {attempt})",
                self.inner.name(),
                self.salt
            );
        }
        self.counters.note_injected_error();
        Err(CoreError::Unavailable(format!(
            "injected {kind} fault: {method} on {} (salt {}, attempt {attempt})",
            self.inner.name(),
            self.salt
        )))
    }
}

impl MicroblogEngine for ChaosEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn users_with_followers_over(&self, threshold: i64) -> Result<Vec<i64>> {
        self.gate("users_with_followers_over", key_i64(threshold))?;
        self.inner.users_with_followers_over(threshold)
    }

    fn followees(&self, uid: i64) -> Result<Vec<i64>> {
        self.gate("followees", key_i64(uid))?;
        self.inner.followees(uid)
    }

    fn followee_tweets(&self, uid: i64) -> Result<Vec<i64>> {
        self.gate("followee_tweets", key_i64(uid))?;
        self.inner.followee_tweets(uid)
    }

    fn followee_hashtags(&self, uid: i64) -> Result<Vec<String>> {
        self.gate("followee_hashtags", key_i64(uid))?;
        self.inner.followee_hashtags(uid)
    }

    fn co_mentioned_users(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.gate("co_mentioned_users", key2(key_i64(uid), n as u64))?;
        self.inner.co_mentioned_users(uid, n)
    }

    fn co_occurring_hashtags(&self, tag: &str, n: usize) -> Result<Vec<Ranked<String>>> {
        self.gate("co_occurring_hashtags", key2(key_str(tag), n as u64))?;
        self.inner.co_occurring_hashtags(tag, n)
    }

    fn recommend_followees(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.gate("recommend_followees", key2(key_i64(uid), n as u64))?;
        self.inner.recommend_followees(uid, n)
    }

    fn recommend_followers(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.gate("recommend_followers", key2(key_i64(uid), n as u64))?;
        self.inner.recommend_followers(uid, n)
    }

    fn current_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.gate("current_influence", key2(key_i64(uid), n as u64))?;
        self.inner.current_influence(uid, n)
    }

    fn potential_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.gate("potential_influence", key2(key_i64(uid), n as u64))?;
        self.inner.potential_influence(uid, n)
    }

    fn shortest_path_len(&self, a: i64, b: i64, max_hops: u32) -> Result<Option<u32>> {
        self.gate("shortest_path_len", key2(key_i64(a), key_i64(b) ^ max_hops as u64))?;
        self.inner.shortest_path_len(a, b, max_hops)
    }

    fn tweets_with_hashtag(&self, tag: &str) -> Result<Vec<i64>> {
        self.gate("tweets_with_hashtag", key_str(tag))?;
        self.inner.tweets_with_hashtag(tag)
    }

    fn retweet_count(&self, tid: i64) -> Result<u64> {
        self.gate("retweet_count", key_i64(tid))?;
        self.inner.retweet_count(tid)
    }

    fn poster_of(&self, tid: i64) -> Result<i64> {
        self.gate("poster_of", key_i64(tid))?;
        self.inner.poster_of(tid)
    }

    fn has_user(&self, uid: i64) -> Result<bool> {
        self.gate("has_user", key_i64(uid))?;
        self.inner.has_user(uid)
    }

    fn posted_tweets_kernel(&self, uids: &[i64]) -> Result<Vec<i64>> {
        self.gate("posted_tweets_kernel", key_slice(uids))?;
        self.inner.posted_tweets_kernel(uids)
    }

    fn hashtags_kernel(&self, uids: &[i64]) -> Result<Vec<String>> {
        self.gate("hashtags_kernel", key_slice(uids))?;
        self.inner.hashtags_kernel(uids)
    }

    fn count_followees_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>> {
        self.gate("count_followees_kernel", key_slice(uids))?;
        self.inner.count_followees_kernel(uids)
    }

    fn count_followers_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>> {
        self.gate("count_followers_kernel", key_slice(uids))?;
        self.inner.count_followers_kernel(uids)
    }

    fn co_mention_counts_kernel(&self, uid: i64) -> Result<Vec<(i64, u64)>> {
        self.gate("co_mention_counts_kernel", key_i64(uid))?;
        self.inner.co_mention_counts_kernel(uid)
    }

    fn co_tag_counts_kernel(&self, tag: &str) -> Result<Vec<(String, u64)>> {
        self.gate("co_tag_counts_kernel", key_str(tag))?;
        self.inner.co_tag_counts_kernel(tag)
    }

    fn follow_frontier_kernel(&self, uids: &[i64]) -> Result<Vec<i64>> {
        self.gate("follow_frontier_kernel", key_slice(uids))?;
        self.inner.follow_frontier_kernel(uids)
    }

    fn co_mention_topn_kernel(
        &self,
        uid: i64,
        k: usize,
    ) -> Result<micrograph_common::topn::TopKPartial<i64>> {
        self.gate("co_mention_topn_kernel", key2(key_i64(uid), k as u64))?;
        self.inner.co_mention_topn_kernel(uid, k)
    }

    fn co_mention_counts_for_kernel(&self, uid: i64, keys: &[i64]) -> Result<Vec<(i64, u64)>> {
        self.gate("co_mention_counts_for_kernel", key2(key_i64(uid), key_slice(keys)))?;
        self.inner.co_mention_counts_for_kernel(uid, keys)
    }

    fn co_tag_topn_kernel(
        &self,
        tag: &str,
        k: usize,
    ) -> Result<micrograph_common::topn::TopKPartial<String>> {
        self.gate("co_tag_topn_kernel", key2(key_str(tag), k as u64))?;
        self.inner.co_tag_topn_kernel(tag, k)
    }

    fn co_tag_counts_for_kernel(&self, tag: &str, keys: &[String]) -> Result<Vec<(String, u64)>> {
        self.gate("co_tag_counts_for_kernel", key2(key_str(tag), key_str_slice(keys)))?;
        self.inner.co_tag_counts_for_kernel(tag, keys)
    }

    fn count_followees_topn_kernel(
        &self,
        uids: &[i64],
        exclude: &[i64],
        k: usize,
    ) -> Result<micrograph_common::topn::TopKPartial<i64>> {
        self.gate(
            "count_followees_topn_kernel",
            key2(key_slice(uids), key2(key_slice(exclude), k as u64)),
        )?;
        self.inner.count_followees_topn_kernel(uids, exclude, k)
    }

    fn count_followees_counts_for_kernel(
        &self,
        uids: &[i64],
        keys: &[i64],
    ) -> Result<Vec<(i64, u64)>> {
        self.gate("count_followees_counts_for_kernel", key2(key_slice(uids), key_slice(keys)))?;
        self.inner.count_followees_counts_for_kernel(uids, keys)
    }

    fn count_followers_topn_kernel(
        &self,
        uids: &[i64],
        exclude: &[i64],
        k: usize,
    ) -> Result<micrograph_common::topn::TopKPartial<i64>> {
        self.gate(
            "count_followers_topn_kernel",
            key2(key_slice(uids), key2(key_slice(exclude), k as u64)),
        )?;
        self.inner.count_followers_topn_kernel(uids, exclude, k)
    }

    fn count_followers_counts_for_kernel(
        &self,
        uids: &[i64],
        keys: &[i64],
    ) -> Result<Vec<(i64, u64)>> {
        self.gate("count_followers_counts_for_kernel", key2(key_slice(uids), key_slice(keys)))?;
        self.inner.count_followers_counts_for_kernel(uids, keys)
    }

    fn influence_topn_kernel(
        &self,
        uid: i64,
        current: bool,
        k: usize,
    ) -> Result<micrograph_common::topn::TopKPartial<i64>> {
        self.gate(
            "influence_topn_kernel",
            key2(key_i64(uid), key2(current as u64, k as u64)),
        )?;
        self.inner.influence_topn_kernel(uid, current, k)
    }

    fn ensure_user(&self, uid: i64) -> Result<()> {
        self.gate("ensure_user", key_i64(uid))?;
        self.inner.ensure_user(uid)
    }

    fn bump_followers(&self, uid: i64, delta: i64) -> Result<()> {
        self.gate("bump_followers", key2(key_i64(uid), delta as u64))?;
        self.inner.bump_followers(uid, delta)
    }

    fn apply_event(&self, event: &micrograph_datagen::UpdateEvent) -> Result<()> {
        use micrograph_datagen::UpdateEvent;
        let key = match event {
            UpdateEvent::NewUser { uid, .. } => key2(1, key_u64(*uid)),
            UpdateEvent::NewFollow { follower, followee } => {
                key2(2, key2(key_u64(*follower), *followee))
            }
            UpdateEvent::NewTweet { tid, .. } => key2(3, key_u64(*tid)),
        };
        self.gate("apply_event", key)?;
        self.inner.apply_event(event)
    }

    fn apply_event_batch(&self, events: &[micrograph_datagen::UpdateEvent]) -> Result<()> {
        use micrograph_datagen::UpdateEvent;
        // ONE gate per batch, keyed by a fold of the per-event keys, fired
        // BEFORE the inner engine mutates anything: a retried batch either
        // never started (the gate rejected it) or runs against the same
        // pre-batch state, so it is never double-applied (DESIGN.md §4j).
        let key = events.iter().fold(key2(4, events.len() as u64), |acc, event| {
            let k = match event {
                UpdateEvent::NewUser { uid, .. } => key2(1, key_u64(*uid)),
                UpdateEvent::NewFollow { follower, followee } => {
                    key2(2, key2(key_u64(*follower), *followee))
                }
                UpdateEvent::NewTweet { tid, .. } => key2(3, key_u64(*tid)),
            };
            key2(acc, k)
        });
        self.gate("apply_event_batch", key)?;
        self.inner.apply_event_batch(events)
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }

    fn ops_count(&self) -> u64 {
        self.inner.ops_count()
    }

    fn drop_caches(&self) -> Result<()> {
        self.inner.drop_caches()
    }

    fn fault_stats(&self) -> FaultStats {
        self.counters.snapshot().plus(&self.inner.fault_stats())
    }

    fn scatter_mode(&self) -> Option<crate::shard::ScatterMode> {
        self.inner.scatter_mode()
    }

    fn set_scatter_mode(&self, mode: crate::shard::ScatterMode) -> bool {
        // Ungated, like the other instrumentation passthroughs.
        self.inner.set_scatter_mode(mode)
    }

    fn exec_mode(&self) -> Option<arbor_ql::ExecMode> {
        self.inner.exec_mode()
    }

    fn set_exec_mode(&self, mode: arbor_ql::ExecMode) -> bool {
        // Ungated, like the other instrumentation passthroughs.
        self.inner.set_exec_mode(mode)
    }

    fn batched_kernels(&self) -> Option<bool> {
        self.inner.batched_kernels()
    }

    fn set_batched_kernels(&self, on: bool) -> bool {
        // Ungated, like the other instrumentation passthroughs.
        self.inner.set_batched_kernels(on)
    }

    fn write_mode(&self) -> Option<crate::engine::WriteMode> {
        self.inner.write_mode()
    }

    fn set_write_mode(&self, mode: crate::engine::WriteMode) -> bool {
        // Ungated, like the other instrumentation passthroughs.
        self.inner.set_write_mode(mode)
    }

    fn replica_count(&self) -> Option<usize> {
        self.inner.replica_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_pure() {
        let plan = FaultPlan::hostile(42);
        for key in 0..200u64 {
            for attempt in 0..4 {
                let a = plan.decide(1, "followees", key, attempt);
                let b = plan.decide(1, "followees", key, attempt);
                assert_eq!(a, b, "decide must be a pure function");
            }
        }
    }

    #[test]
    fn transient_faults_recover_after_burst() {
        let plan = FaultPlan::transient(7);
        let mut faulted = 0u32;
        for key in 0..2000u64 {
            match plan.decide(0, "co_mention_counts_kernel", key, 0) {
                Outcome::Transient { .. } => {
                    faulted += 1;
                    // Still faulted below the burst, healthy at/after it.
                    for attempt in 1..plan.transient_burst {
                        assert!(matches!(
                            plan.decide(0, "co_mention_counts_kernel", key, attempt),
                            Outcome::Transient { .. }
                        ));
                    }
                    assert_eq!(
                        plan.decide(0, "co_mention_counts_kernel", key, plan.transient_burst),
                        Outcome::Healthy,
                        "transient fault must clear after the burst"
                    );
                }
                Outcome::Permanent { .. } => panic!("transient plan injected a permanent fault"),
                Outcome::Healthy => {}
            }
        }
        // ~8% of 2000 ≈ 160; accept a generous band.
        assert!((60..400).contains(&faulted), "transient rate off: {faulted}/2000");
    }

    #[test]
    fn permanent_faults_never_recover() {
        let plan = FaultPlan::hostile(9);
        let mut found = false;
        for key in 0..2000u64 {
            if let Outcome::Permanent { .. } = plan.decide(3, "poster_of", key, 0) {
                found = true;
                for attempt in 0..8 {
                    assert!(matches!(
                        plan.decide(3, "poster_of", key, attempt),
                        Outcome::Permanent { .. }
                    ));
                }
            }
        }
        assert!(found, "hostile plan should inject some permanent faults");
    }

    #[test]
    fn shards_fault_independently() {
        // Different salts must not fault the same keys in lockstep.
        let plan = FaultPlan::transient(11);
        let fault_set = |salt: u64| -> Vec<u64> {
            (0..2000u64)
                .filter(|&k| plan.decide(salt, "followees", k, 0) != Outcome::Healthy)
                .collect()
        };
        assert_ne!(fault_set(0), fault_set(1), "salts must decorrelate shards");
    }

    #[test]
    fn budget_charges_and_times_out() {
        let ((), stats) = with_request_budget(Some(100), || {
            assert_eq!(remaining_budget_us(), Some(100));
            charge(60).unwrap();
            assert_eq!(remaining_budget_us(), Some(40));
            let err = charge(50).unwrap_err();
            assert!(matches!(err, CoreError::Timeout(_)), "expected timeout, got {err}");
            assert!(!err.is_retryable(), "timeouts must not be retryable");
            // Budget pins at zero: further charges keep failing.
            assert_eq!(remaining_budget_us(), Some(0));
            assert!(charge(1).is_err());
            assert!(charge(0).is_ok(), "zero-cost charges still pass");
        });
        assert_eq!(stats, RequestStats::default());
        // Outside the scope the budget is gone and charging is free.
        assert_eq!(remaining_budget_us(), None);
        charge(u64::MAX).unwrap();
    }

    #[test]
    fn request_scope_saves_and_restores_ambient_state() {
        let (inner, outer) = with_request_budget(Some(1_000), || {
            note_shard(true);
            note_shard(false);
            note_fanout(4);
            // A nested request gets a fresh scope...
            let ((), stats) = with_request_budget(Some(5), || {
                note_shard(true);
                note_fanout(2);
                assert_eq!(remaining_budget_us(), Some(5));
            });
            // ...and the outer scope comes back untouched.
            assert_eq!(remaining_budget_us(), Some(1_000));
            stats
        });
        assert_eq!(inner.coverage, Coverage { answered: 1, total: 1 });
        assert_eq!(inner.max_fanout, 2);
        assert_eq!(outer.coverage, Coverage { answered: 1, total: 2 });
        assert_eq!(outer.max_fanout, 4, "nested scope must not clobber the outer max");
        assert!(outer.coverage.is_partial());
        assert_eq!(outer.coverage.to_string(), "1/2");
    }

    #[test]
    fn worker_budget_reports_spend_and_restores() {
        let ((), outer) = with_request_budget(Some(1_000), || {
            note_shard(true);
            // A worker scope starts from a snapshot and meters its own use.
            let ((), spend) = with_worker_budget(Some(200), || {
                charge(30).unwrap();
                note_shard(true);
                note_shard(false);
                note_fanout(3);
                charge(15).unwrap();
            });
            assert_eq!(spend.spent_us, 45);
            assert_eq!((spend.answered, spend.total), (1, 2));
            assert_eq!(spend.max_fanout, 3);
            // The caller's own budget is untouched until it absorbs/charges.
            assert_eq!(remaining_budget_us(), Some(1_000));
            absorb_worker_spend(&spend);
        });
        assert_eq!(outer.coverage, Coverage { answered: 2, total: 3 });
        assert_eq!(outer.max_fanout, 3);
    }

    #[test]
    fn worker_budget_exhaustion_spends_exactly_the_snapshot() {
        let (r, spend) = with_worker_budget(Some(40), || charge(100));
        assert!(matches!(r, Err(CoreError::Timeout(_))));
        assert_eq!(spend.spent_us, 40, "a timed-out worker consumed its whole snapshot");
        // Without a snapshot (no ambient budget), charging is free.
        let (r, spend) = with_worker_budget(None, || charge(u64::MAX));
        assert!(r.is_ok());
        assert_eq!(spend.spent_us, 0);
    }

    #[test]
    fn fallback_budget_defers_to_ambient() {
        // No ambient budget: the fallback installs.
        with_fallback_budget(Some(70), || {
            assert_eq!(remaining_budget_us(), Some(70));
        });
        assert_eq!(remaining_budget_us(), None);
        // Ambient budget present: the fallback must not override it.
        let ((), _) = with_request_budget(Some(500), || {
            with_fallback_budget(Some(70), || {
                assert_eq!(remaining_budget_us(), Some(500));
            });
        });
    }

    #[test]
    fn attempt_scope_restores_on_panic() {
        assert_eq!(current_attempt(), 0);
        with_attempt(3, || assert_eq!(current_attempt(), 3));
        assert_eq!(current_attempt(), 0);
        let unwound = std::panic::catch_unwind(|| {
            with_attempt(5, || panic!("boom"));
        });
        assert!(unwound.is_err());
        assert_eq!(current_attempt(), 0, "attempt must restore across unwinds");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_us(0), 100);
        assert_eq!(p.backoff_us(1), 200);
        assert_eq!(p.backoff_us(2), 400);
        assert_eq!(p.backoff_us(10), 5_000, "must cap");
        assert_eq!(RetryPolicy::none().backoff_us(0), 0);
    }

    #[test]
    fn stats_arithmetic() {
        let a = FaultStats {
            injected_errors: 3,
            injected_panics: 1,
            retries: 5,
            panics_caught: 1,
            exhausted: 0,
            hedges: 4,
            hedge_wins: 2,
            shed: 1,
            failovers: 3,
            replica_reads: 6,
        };
        let b = FaultStats {
            injected_errors: 1,
            injected_panics: 0,
            retries: 2,
            panics_caught: 0,
            exhausted: 0,
            hedges: 1,
            hedge_wins: 1,
            shed: 0,
            failovers: 1,
            replica_reads: 2,
        };
        assert_eq!(a.plus(&b).injected_errors, 4);
        assert_eq!(a.plus(&b).hedges, 5);
        assert_eq!(a.plus(&b).failovers, 4);
        assert_eq!(a.plus(&b).replica_reads, 8);
        assert_eq!(a.since(&b).retries, 3);
        assert_eq!(a.since(&b).hedge_wins, 1);
        assert_eq!(a.since(&b).shed, 1);
        assert_eq!(a.since(&b).failovers, 2);
        assert_eq!(a.since(&b).replica_reads, 4);
        assert_eq!(a.total_injected(), 4);
        assert!(!a.is_zero());
        assert!(FaultStats::default().is_zero());
        assert!(a.to_string().contains("3 errors"));
        assert!(a.to_string().contains("4 hedges (2 won)"));
        assert!(a.to_string().contains("1 shed"));
        assert!(a.to_string().contains("3 failovers"));
        assert!(a.to_string().contains("6 replica reads"));
    }

    #[test]
    fn noop_plan_never_faults() {
        let plan = FaultPlan::new(99);
        assert!(plan.is_noop());
        for key in 0..500 {
            assert_eq!(plan.decide(0, "anything", key, 0), Outcome::Healthy);
        }
    }
}
