//! The concurrent serving layer: N reader threads over one shared engine.
//!
//! The paper measures single-client latency; the axis it leaves open — and
//! the one LDBC-style benchmarks add next — is multi-client throughput
//! against a shared store. [`serve`] drives a deterministic mixed Q1–Q6
//! request stream from N threads over any [`MicroblogEngine`] (a
//! `&dyn`/`Arc<dyn>` trait object), recording per-query latency
//! percentiles and aggregate throughput.
//!
//! Determinism under concurrency: requests are dispensed from a shared
//! atomic cursor, so *which thread* runs a request is scheduling-dependent,
//! but each request's rendered result is stored at its stream index. The
//! merged output is therefore byte-identical across thread counts — the
//! property `tests/concurrent_serving.rs` pins down, and the concurrent
//! extension of the cross-engine equivalence invariant.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use micrograph_common::rng::SplitMix64;
use micrograph_common::stats::{percentile, Timer};

use crate::engine::MicroblogEngine;
use crate::fault::{self, FaultStats};
use crate::workload::{QueryClass, QueryId, QueryParams};
use crate::Result;

// Compile-time Send + Sync guarantees. The serving layer shares one engine
// across scoped threads; a regression anywhere in the stack (arbor-ql plan
// cache, arbordb page cache, bitgraph extents) must fail to compile here,
// not deadlock or data-race at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<crate::adapters::ArborEngine>();
    assert_send_sync::<crate::adapters::BitEngine>();
    assert_send_sync::<crate::shard::ShardedEngine>();
    assert_send_sync::<dyn MicroblogEngine>();
    assert_send_sync::<arbordb::db::GraphDb>();
    assert_send_sync::<arbor_ql::QueryEngine>();
    assert_send_sync::<bitgraph::graph::Graph>();
};

/// One request of the mixed read stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The catalog query to run.
    pub query: QueryId,
    /// Its parameters.
    pub params: QueryParams,
}

/// Builds a deterministic mixed request stream: `len` requests drawn
/// uniformly over the Table 2 catalog, parameters sampled over `1..=users`
/// and a `vocab`-sized tag head. Same seed → same stream, on any engine.
pub fn request_stream(seed: u64, len: usize, users: u64, vocab: u64) -> Vec<Request> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| {
            let query = QueryId::ALL[rng.next_below(QueryId::ALL.len() as u64) as usize];
            let params = QueryParams::sample(&mut rng, users, vocab);
            Request { query, params }
        })
        .collect()
}

/// Runs one request and renders its full result set as a canonical string —
/// the serving layer's unit of work, and the oracle the equivalence tests
/// compare byte-for-byte across thread counts and engines.
pub fn execute_rendered(engine: &dyn MicroblogEngine, req: &Request) -> Result<String> {
    fn ranked<K: std::fmt::Debug>(rows: &[crate::engine::Ranked<K>]) -> String {
        rows.iter()
            .map(|r| format!("{:?}:{}", r.key, r.count))
            .collect::<Vec<_>>()
            .join(";")
    }
    let p = &req.params;
    Ok(match req.query {
        QueryId::Q1_1 => format!("{:?}", engine.users_with_followers_over(p.threshold)?),
        QueryId::Q2_1 => format!("{:?}", engine.followees(p.uid)?),
        QueryId::Q2_2 => format!("{:?}", engine.followee_tweets(p.uid)?),
        QueryId::Q2_3 => format!("{:?}", engine.followee_hashtags(p.uid)?),
        QueryId::Q3_1 => ranked(&engine.co_mentioned_users(p.uid, p.n)?),
        QueryId::Q3_2 => ranked(&engine.co_occurring_hashtags(&p.tag, p.n)?),
        QueryId::Q4_1 => ranked(&engine.recommend_followees(p.uid, p.n)?),
        QueryId::Q4_2 => ranked(&engine.recommend_followers(p.uid, p.n)?),
        QueryId::Q5_1 => ranked(&engine.current_influence(p.uid, p.n)?),
        QueryId::Q5_2 => ranked(&engine.potential_influence(p.uid, p.n)?),
        QueryId::Q6_1 => {
            format!("{:?}", engine.shortest_path_len(p.uid, p.uid_b, p.max_hops)?)
        }
    })
}

/// Optional per-query-class virtual deadline overrides in µs (DESIGN.md
/// §4f). A class left `None` falls back to the run's blanket
/// `deadline_us`, so the common configurations stay one-liners: all-`None`
/// reproduces the single-deadline behavior exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassDeadlines {
    /// Deadline for [`QueryClass::Point`] requests.
    pub point_us: Option<u64>,
    /// Deadline for [`QueryClass::Scatter`] requests.
    pub scatter_us: Option<u64>,
    /// Deadline for [`QueryClass::Traversal`] requests.
    pub traversal_us: Option<u64>,
}

impl ClassDeadlines {
    /// The override for `class`, if any.
    pub fn for_class(&self, class: QueryClass) -> Option<u64> {
        match class {
            QueryClass::Point => self.point_us,
            QueryClass::Scatter => self.scatter_us,
            QueryClass::Traversal => self.traversal_us,
        }
    }

    /// The deadline `class` actually runs under: its override, else the
    /// blanket `fallback`.
    pub fn effective(&self, class: QueryClass, fallback: Option<u64>) -> Option<u64> {
        self.for_class(class).or(fallback)
    }
}

/// Serving-harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Concurrent reader threads (≥ 1).
    pub threads: usize,
    /// Requests in the stream.
    pub requests: usize,
    /// Stream seed.
    pub seed: u64,
    /// Subject-user id range (`1..=users`; match the dataset).
    pub users: u64,
    /// Hashtag vocabulary size for tag subjects.
    pub vocab: u64,
    /// Per-request deadline budget in **virtual** microseconds (see
    /// `crate::fault`): `None` disables deadlines. Only engines that charge
    /// the budget (chaos wrappers, retry backoff) consume it.
    pub deadline_us: Option<u64>,
    /// Per-query-class deadline overrides; classes left `None` use
    /// `deadline_us`. Lets an overloaded server keep point lookups on a
    /// tight budget while giving traversals room (or vice versa), and —
    /// combined with `DegradationMode::Partial` — shed scatter stragglers
    /// instead of queueing behind them.
    pub class_deadlines: ClassDeadlines,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 4,
            requests: 256,
            seed: 42,
            users: 100,
            vocab: 16,
            deadline_us: None,
            class_deadlines: ClassDeadlines::default(),
        }
    }
}

/// Latency summary for one catalog query within a serving run.
#[derive(Debug, Clone, Copy)]
pub struct QuerySummary {
    /// The query.
    pub query: QueryId,
    /// Requests of this query in the stream.
    pub count: u64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Slowest request (ms).
    pub max_ms: f64,
    /// Widest single scatter fan-out any request of this query issued
    /// (shards addressed by one scatter; 0 on unsharded engines).
    pub max_fanout: u32,
}

/// Latency summary for one [`QueryClass`] within a serving run — the
/// granularity per-class deadlines are tuned at (DESIGN.md §4f).
#[derive(Debug, Clone, Copy)]
pub struct ClassSummary {
    /// The class.
    pub class: QueryClass,
    /// Requests of this class in the stream.
    pub count: u64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// The virtual deadline requests of this class ran under.
    pub deadline_us: Option<u64>,
}

/// The result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Engine name.
    pub engine: &'static str,
    /// Reader threads used.
    pub threads: usize,
    /// Requests served.
    pub requests: usize,
    /// Wall-clock time for the whole stream (ms).
    pub wall_ms: f64,
    /// Aggregate throughput (requests per second).
    pub qps: f64,
    /// Scatter execution mode of the engine (`None` for monoliths).
    pub scatter_mode: Option<crate::shard::ScatterMode>,
    /// Replicas behind each shard slot (`None` for monoliths, `Some(1)`
    /// for unreplicated sharded engines — DESIGN.md §4i).
    pub replicas: Option<usize>,
    /// Overall latency percentiles across every request (ms).
    pub p50_ms: f64,
    /// 95th percentile across every request (ms).
    pub p95_ms: f64,
    /// 99th percentile across every request (ms).
    pub p99_ms: f64,
    /// Per-query latency summaries, Table 2 order (only queries present in
    /// the stream).
    pub per_query: Vec<QuerySummary>,
    /// Per-class latency summaries (point/scatter/traversal; only classes
    /// present in the stream), each tagged with its effective deadline.
    pub per_class: Vec<ClassSummary>,
    /// Rendered result per request, in stream order — identical across
    /// thread counts by construction. Failed requests render as
    /// `<error:…>`, degraded ones carry a `<coverage:a/t>` suffix, so the
    /// digest covers fault outcomes too.
    pub rendered: Vec<String>,
    /// The per-request deadline budget the run used.
    pub deadline_us: Option<u64>,
    /// Requests that failed (rendered as `<error:…>`).
    pub errors: u64,
    /// Requests answered with partial scatter coverage.
    pub degraded: u64,
    /// Fault-layer counters attributed to this run (engine totals after
    /// minus before). For a fixed chaos seed and request stream these are
    /// identical at any thread count.
    pub faults: FaultStats,
}

impl ServeReport {
    /// FNV-1a hash over the rendered results: a cheap fingerprint for
    /// comparing runs without keeping both `rendered` vectors around.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for r in &self.rendered {
            for &b in r.as_bytes() {
                eat(b);
            }
            eat(0xff);
        }
        h
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut mode = self
            .scatter_mode
            .map(|m| format!(", scatter {}", m.label()))
            .unwrap_or_default();
        if let Some(r) = self.replicas {
            if r > 1 {
                mode.push_str(&format!(", R={r}"));
            }
        }
        let mut out = format!(
            "== serving: {} — {} requests / {} thread(s){}: {:.0} req/s (wall {:.1} ms) ==\n",
            self.engine, self.requests, self.threads, mode, self.qps, self.wall_ms
        );
        out.push_str(&format!(
            "{:<6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>7}\n",
            "query", "count", "p50 ms", "p95 ms", "p99 ms", "max ms", "maxfan"
        ));
        for q in &self.per_query {
            out.push_str(&format!(
                "{:<6} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7}\n",
                q.query.label(),
                q.count,
                q.p50_ms,
                q.p95_ms,
                q.p99_ms,
                q.max_ms,
                q.max_fanout
            ));
        }
        out.push_str(&format!(
            "{:<9} {:>6} {:>10} {:>10} {:>10} {:>12}\n",
            "class", "count", "p50 ms", "p95 ms", "p99 ms", "deadline us"
        ));
        for c in &self.per_class {
            out.push_str(&format!(
                "{:<9} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>12}\n",
                c.class.label(),
                c.count,
                c.p50_ms,
                c.p95_ms,
                c.p99_ms,
                c.deadline_us.map_or_else(|| "-".into(), |d| d.to_string()),
            ));
        }
        if self.errors > 0 || self.degraded > 0 || !self.faults.is_zero() {
            out.push_str(&format!(
                "faults: {} — {} request(s) errored, {} degraded\n",
                self.faults, self.errors, self.degraded
            ));
        }
        out
    }
}

/// One executed request, tagged with its stream position.
struct Sample {
    index: usize,
    query: QueryId,
    ms: f64,
    rendered: String,
    errored: bool,
    degraded: bool,
    fanout: u32,
}

/// Drives a deterministic mixed Q1–Q6 stream from `config.threads` reader
/// threads against one shared engine, returning latency percentiles,
/// aggregate throughput and the per-request rendered results.
///
/// Threads pull work from a shared atomic cursor (no static partitioning,
/// so a slow query does not idle the other readers) and record results by
/// stream index, keeping the output independent of the interleaving.
///
/// Each request runs under its own deadline budget and coverage scope
/// (`crate::fault`); a failed request renders as `<error:…>` instead of
/// aborting the run, so one dead shard degrades answers, not the server.
///
/// # Panics
/// Panics when `config.threads` is zero or a reader thread panics.
pub fn serve(engine: &dyn MicroblogEngine, config: &ServeConfig) -> Result<ServeReport> {
    assert!(config.threads > 0, "serving needs at least one reader thread");
    let requests = request_stream(config.seed, config.requests, config.users, config.vocab);
    let cursor = AtomicUsize::new(0);
    let faults_before = engine.fault_stats();
    let wall = Timer::start();
    let per_thread: Vec<Vec<Sample>> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(config.threads);
        for _ in 0..config.threads {
            let cursor = &cursor;
            let requests = &requests;
            handles.push(s.spawn(move |_| {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = requests.get(i) else { break };
                    let t = Timer::start();
                    let deadline = config
                        .class_deadlines
                        .effective(req.query.class(), config.deadline_us);
                    let (result, stats) = fault::with_request_budget(deadline, || {
                        execute_rendered(engine, req)
                    });
                    let coverage = stats.coverage;
                    let (rendered, errored, degraded) = match result {
                        Ok(s) if coverage.is_partial() => {
                            (format!("{s} <coverage:{coverage}>"), false, true)
                        }
                        Ok(s) => (s, false, false),
                        Err(e) => (format!("<error:{e}>"), true, false),
                    };
                    local.push(Sample {
                        index: i,
                        query: req.query,
                        ms: t.elapsed_ms(),
                        rendered,
                        errored,
                        degraded,
                        fanout: stats.max_fanout,
                    });
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect()
    })
    .expect("serving scope");
    let wall_ms = wall.elapsed_ms();

    let mut rendered: Vec<Option<String>> = (0..requests.len()).map(|_| None).collect();
    let mut latencies: HashMap<QueryId, Vec<f64>> = HashMap::new();
    let mut fanouts: HashMap<QueryId, u32> = HashMap::new();
    let mut all_ms: Vec<f64> = Vec::with_capacity(requests.len());
    let (mut errors, mut degraded) = (0u64, 0u64);
    for thread_samples in per_thread {
        for sample in thread_samples {
            latencies.entry(sample.query).or_default().push(sample.ms);
            let fan = fanouts.entry(sample.query).or_default();
            *fan = (*fan).max(sample.fanout);
            all_ms.push(sample.ms);
            errors += sample.errored as u64;
            degraded += sample.degraded as u64;
            rendered[sample.index] = Some(sample.rendered);
        }
    }
    let rendered: Vec<String> = rendered
        .into_iter()
        .map(|r| r.expect("every request executed exactly once"))
        .collect();
    let per_query = QueryId::ALL
        .iter()
        .filter_map(|&query| {
            let lat = latencies.get(&query)?;
            Some(QuerySummary {
                query,
                count: lat.len() as u64,
                p50_ms: percentile(lat, 50.0),
                p95_ms: percentile(lat, 95.0),
                p99_ms: percentile(lat, 99.0),
                max_ms: lat.iter().copied().fold(0.0, f64::max),
                max_fanout: fanouts.get(&query).copied().unwrap_or(0),
            })
        })
        .collect();
    let per_class = QueryClass::ALL
        .iter()
        .filter_map(|&class| {
            let lat: Vec<f64> = latencies
                .iter()
                .filter(|(q, _)| q.class() == class)
                .flat_map(|(_, l)| l.iter().copied())
                .collect();
            if lat.is_empty() {
                return None;
            }
            Some(ClassSummary {
                class,
                count: lat.len() as u64,
                p50_ms: percentile(&lat, 50.0),
                p95_ms: percentile(&lat, 95.0),
                p99_ms: percentile(&lat, 99.0),
                deadline_us: config.class_deadlines.effective(class, config.deadline_us),
            })
        })
        .collect();
    Ok(ServeReport {
        engine: engine.name(),
        threads: config.threads,
        requests: requests.len(),
        wall_ms,
        qps: requests.len() as f64 / (wall_ms / 1_000.0).max(1e-9),
        scatter_mode: engine.scatter_mode(),
        replicas: engine.replica_count(),
        p50_ms: percentile(&all_ms, 50.0),
        p95_ms: percentile(&all_ms, 95.0),
        p99_ms: percentile(&all_ms, 99.0),
        per_query,
        per_class,
        rendered,
        deadline_us: config.deadline_us,
        errors,
        degraded,
        faults: engine.fault_stats().since(&faults_before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_is_deterministic() {
        let a = request_stream(7, 64, 100, 16);
        let b = request_stream(7, 64, 100, 16);
        assert_eq!(a.len(), 64);
        assert_eq!(a, b);
        let c = request_stream(8, 64, 100, 16);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn class_deadlines_fall_back_to_blanket() {
        let d = ClassDeadlines { scatter_us: Some(40), ..Default::default() };
        assert_eq!(d.effective(QueryClass::Scatter, Some(100)), Some(40));
        assert_eq!(d.effective(QueryClass::Point, Some(100)), Some(100));
        assert_eq!(d.effective(QueryClass::Traversal, None), None);
        assert_eq!(ClassDeadlines::default().effective(QueryClass::Scatter, None), None);
    }

    #[test]
    fn stream_covers_the_catalog() {
        let s = request_stream(3, 512, 100, 16);
        for q in QueryId::ALL {
            assert!(s.iter().any(|r| r.query == q), "{} never sampled", q.label());
        }
    }
}
