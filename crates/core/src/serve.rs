//! The concurrent serving layer: N reader threads over one shared engine.
//!
//! The paper measures single-client latency; the axis it leaves open — and
//! the one LDBC-style benchmarks add next — is multi-client throughput
//! against a shared store. [`serve`] drives a deterministic mixed Q1–Q6
//! request stream from N threads over any [`MicroblogEngine`] (a
//! `&dyn`/`Arc<dyn>` trait object), recording per-query latency
//! percentiles and aggregate throughput.
//!
//! Determinism under concurrency: requests are dispensed from a shared
//! atomic cursor, so *which thread* runs a request is scheduling-dependent,
//! but each request's rendered result is stored at its stream index. The
//! merged output is therefore byte-identical across thread counts — the
//! property `tests/concurrent_serving.rs` pins down, and the concurrent
//! extension of the cross-engine equivalence invariant.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use micrograph_common::rng::SplitMix64;
use micrograph_common::stats::{percentile, Timer};

use crate::engine::MicroblogEngine;
use crate::fault::{self, FaultStats};
use crate::workload::{QueryClass, QueryId, QueryParams};
use crate::Result;

// Compile-time Send + Sync guarantees. The serving layer shares one engine
// across scoped threads; a regression anywhere in the stack (arbor-ql plan
// cache, arbordb page cache, bitgraph extents) must fail to compile here,
// not deadlock or data-race at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<crate::adapters::ArborEngine>();
    assert_send_sync::<crate::adapters::BitEngine>();
    assert_send_sync::<crate::shard::ShardedEngine>();
    assert_send_sync::<dyn MicroblogEngine>();
    assert_send_sync::<arbordb::db::GraphDb>();
    assert_send_sync::<arbor_ql::QueryEngine>();
    assert_send_sync::<bitgraph::graph::Graph>();
};

/// One request of the mixed read stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The catalog query to run.
    pub query: QueryId,
    /// Its parameters.
    pub params: QueryParams,
}

/// Builds a deterministic mixed request stream: `len` requests drawn
/// uniformly over the Table 2 catalog, parameters sampled over `1..=users`
/// and a `vocab`-sized tag head. Same seed → same stream, on any engine.
pub fn request_stream(seed: u64, len: usize, users: u64, vocab: u64) -> Vec<Request> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| {
            let query = QueryId::ALL[rng.next_below(QueryId::ALL.len() as u64) as usize];
            let params = QueryParams::sample(&mut rng, users, vocab);
            Request { query, params }
        })
        .collect()
}

/// Runs one request and renders its full result set as a canonical string —
/// the serving layer's unit of work, and the oracle the equivalence tests
/// compare byte-for-byte across thread counts and engines.
pub fn execute_rendered(engine: &dyn MicroblogEngine, req: &Request) -> Result<String> {
    fn ranked<K: std::fmt::Debug>(rows: &[crate::engine::Ranked<K>]) -> String {
        rows.iter()
            .map(|r| format!("{:?}:{}", r.key, r.count))
            .collect::<Vec<_>>()
            .join(";")
    }
    let p = &req.params;
    Ok(match req.query {
        QueryId::Q1_1 => format!("{:?}", engine.users_with_followers_over(p.threshold)?),
        QueryId::Q2_1 => format!("{:?}", engine.followees(p.uid)?),
        QueryId::Q2_2 => format!("{:?}", engine.followee_tweets(p.uid)?),
        QueryId::Q2_3 => format!("{:?}", engine.followee_hashtags(p.uid)?),
        QueryId::Q3_1 => ranked(&engine.co_mentioned_users(p.uid, p.n)?),
        QueryId::Q3_2 => ranked(&engine.co_occurring_hashtags(&p.tag, p.n)?),
        QueryId::Q4_1 => ranked(&engine.recommend_followees(p.uid, p.n)?),
        QueryId::Q4_2 => ranked(&engine.recommend_followers(p.uid, p.n)?),
        QueryId::Q5_1 => ranked(&engine.current_influence(p.uid, p.n)?),
        QueryId::Q5_2 => ranked(&engine.potential_influence(p.uid, p.n)?),
        QueryId::Q6_1 => {
            format!("{:?}", engine.shortest_path_len(p.uid, p.uid_b, p.max_hops)?)
        }
    })
}

/// Optional per-query-class virtual deadline overrides in µs (DESIGN.md
/// §4f). A class left `None` falls back to the run's blanket
/// `deadline_us`, so the common configurations stay one-liners: all-`None`
/// reproduces the single-deadline behavior exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassDeadlines {
    /// Deadline for [`QueryClass::Point`] requests.
    pub point_us: Option<u64>,
    /// Deadline for [`QueryClass::Scatter`] requests.
    pub scatter_us: Option<u64>,
    /// Deadline for [`QueryClass::Traversal`] requests.
    pub traversal_us: Option<u64>,
}

impl ClassDeadlines {
    /// The override for `class`, if any.
    pub fn for_class(&self, class: QueryClass) -> Option<u64> {
        match class {
            QueryClass::Point => self.point_us,
            QueryClass::Scatter => self.scatter_us,
            QueryClass::Traversal => self.traversal_us,
        }
    }

    /// The deadline `class` actually runs under: its override, else the
    /// blanket `fallback`.
    pub fn effective(&self, class: QueryClass, fallback: Option<u64>) -> Option<u64> {
        self.for_class(class).or(fallback)
    }
}

/// Serving-harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Concurrent reader threads (≥ 1).
    pub threads: usize,
    /// Requests in the stream.
    pub requests: usize,
    /// Stream seed.
    pub seed: u64,
    /// Subject-user id range (`1..=users`; match the dataset).
    pub users: u64,
    /// Hashtag vocabulary size for tag subjects.
    pub vocab: u64,
    /// Per-request deadline budget in **virtual** microseconds (see
    /// `crate::fault`): `None` disables deadlines. Only engines that charge
    /// the budget (chaos wrappers, retry backoff) consume it.
    pub deadline_us: Option<u64>,
    /// Per-query-class deadline overrides; classes left `None` use
    /// `deadline_us`. Lets an overloaded server keep point lookups on a
    /// tight budget while giving traversals room (or vice versa), and —
    /// combined with `DegradationMode::Partial` — shed scatter stragglers
    /// instead of queueing behind them.
    pub class_deadlines: ClassDeadlines,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 4,
            requests: 256,
            seed: 42,
            users: 100,
            vocab: 16,
            deadline_us: None,
            class_deadlines: ClassDeadlines::default(),
        }
    }
}

/// Latency summary for one catalog query within a serving run.
#[derive(Debug, Clone, Copy)]
pub struct QuerySummary {
    /// The query.
    pub query: QueryId,
    /// Requests of this query in the stream.
    pub count: u64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Slowest request (ms).
    pub max_ms: f64,
    /// Widest single scatter fan-out any request of this query issued
    /// (shards addressed by one scatter; 0 on unsharded engines).
    pub max_fanout: u32,
}

/// Latency summary for one [`QueryClass`] within a serving run — the
/// granularity per-class deadlines are tuned at (DESIGN.md §4f).
#[derive(Debug, Clone, Copy)]
pub struct ClassSummary {
    /// The class.
    pub class: QueryClass,
    /// Requests of this class in the stream.
    pub count: u64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// The virtual deadline requests of this class ran under.
    pub deadline_us: Option<u64>,
}

/// The result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Engine name.
    pub engine: &'static str,
    /// Reader threads used.
    pub threads: usize,
    /// Requests served.
    pub requests: usize,
    /// Wall-clock time for the whole stream (ms).
    pub wall_ms: f64,
    /// Aggregate throughput (requests per second).
    pub qps: f64,
    /// Scatter execution mode of the engine (`None` for monoliths).
    pub scatter_mode: Option<crate::shard::ScatterMode>,
    /// Replicas behind each shard slot (`None` for monoliths, `Some(1)`
    /// for unreplicated sharded engines — DESIGN.md §4i).
    pub replicas: Option<usize>,
    /// Overall latency percentiles across every request (ms).
    pub p50_ms: f64,
    /// 95th percentile across every request (ms).
    pub p95_ms: f64,
    /// 99th percentile across every request (ms).
    pub p99_ms: f64,
    /// Per-query latency summaries, Table 2 order (only queries present in
    /// the stream).
    pub per_query: Vec<QuerySummary>,
    /// Per-class latency summaries (point/scatter/traversal; only classes
    /// present in the stream), each tagged with its effective deadline.
    pub per_class: Vec<ClassSummary>,
    /// Rendered result per request, in stream order — identical across
    /// thread counts by construction. Failed requests render as
    /// `<error:…>`, degraded ones carry a `<coverage:a/t>` suffix, so the
    /// digest covers fault outcomes too.
    pub rendered: Vec<String>,
    /// The per-request deadline budget the run used.
    pub deadline_us: Option<u64>,
    /// Requests that failed (rendered as `<error:…>`).
    pub errors: u64,
    /// Requests answered with partial scatter coverage.
    pub degraded: u64,
    /// Fault-layer counters attributed to this run (engine totals after
    /// minus before). For a fixed chaos seed and request stream these are
    /// identical at any thread count.
    pub faults: FaultStats,
}

impl ServeReport {
    /// FNV-1a hash over the rendered results: a cheap fingerprint for
    /// comparing runs without keeping both `rendered` vectors around.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for r in &self.rendered {
            for &b in r.as_bytes() {
                eat(b);
            }
            eat(0xff);
        }
        h
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut mode = self
            .scatter_mode
            .map(|m| format!(", scatter {}", m.label()))
            .unwrap_or_default();
        if let Some(r) = self.replicas {
            if r > 1 {
                mode.push_str(&format!(", R={r}"));
            }
        }
        let mut out = format!(
            "== serving: {} — {} requests / {} thread(s){}: {:.0} req/s (wall {:.1} ms) ==\n",
            self.engine, self.requests, self.threads, mode, self.qps, self.wall_ms
        );
        out.push_str(&format!(
            "{:<6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>7}\n",
            "query", "count", "p50 ms", "p95 ms", "p99 ms", "max ms", "maxfan"
        ));
        for q in &self.per_query {
            out.push_str(&format!(
                "{:<6} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7}\n",
                q.query.label(),
                q.count,
                q.p50_ms,
                q.p95_ms,
                q.p99_ms,
                q.max_ms,
                q.max_fanout
            ));
        }
        out.push_str(&format!(
            "{:<9} {:>6} {:>10} {:>10} {:>10} {:>12}\n",
            "class", "count", "p50 ms", "p95 ms", "p99 ms", "deadline us"
        ));
        for c in &self.per_class {
            out.push_str(&format!(
                "{:<9} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>12}\n",
                c.class.label(),
                c.count,
                c.p50_ms,
                c.p95_ms,
                c.p99_ms,
                c.deadline_us.map_or_else(|| "-".into(), |d| d.to_string()),
            ));
        }
        if self.errors > 0 || self.degraded > 0 || !self.faults.is_zero() {
            out.push_str(&format!(
                "faults: {} — {} request(s) errored, {} degraded\n",
                self.faults, self.errors, self.degraded
            ));
        }
        out
    }
}

/// One executed request, tagged with its stream position.
struct Sample {
    index: usize,
    query: QueryId,
    ms: f64,
    rendered: String,
    errored: bool,
    degraded: bool,
    fanout: u32,
}

/// Drives a deterministic mixed Q1–Q6 stream from `config.threads` reader
/// threads against one shared engine, returning latency percentiles,
/// aggregate throughput and the per-request rendered results.
///
/// Threads pull work from a shared atomic cursor (no static partitioning,
/// so a slow query does not idle the other readers) and record results by
/// stream index, keeping the output independent of the interleaving.
///
/// Each request runs under its own deadline budget and coverage scope
/// (`crate::fault`); a failed request renders as `<error:…>` instead of
/// aborting the run, so one dead shard degrades answers, not the server.
///
/// # Panics
/// Panics when `config.threads` is zero or a reader thread panics.
pub fn serve(engine: &dyn MicroblogEngine, config: &ServeConfig) -> Result<ServeReport> {
    assert!(config.threads > 0, "serving needs at least one reader thread");
    let requests = request_stream(config.seed, config.requests, config.users, config.vocab);
    let cursor = AtomicUsize::new(0);
    let faults_before = engine.fault_stats();
    let wall = Timer::start();
    let per_thread: Vec<Vec<Sample>> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(config.threads);
        for _ in 0..config.threads {
            let cursor = &cursor;
            let requests = &requests;
            handles.push(s.spawn(move |_| {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = requests.get(i) else { break };
                    let t = Timer::start();
                    let deadline = config
                        .class_deadlines
                        .effective(req.query.class(), config.deadline_us);
                    let (result, stats) = fault::with_request_budget(deadline, || {
                        execute_rendered(engine, req)
                    });
                    let coverage = stats.coverage;
                    let (rendered, errored, degraded) = match result {
                        Ok(s) if coverage.is_partial() => {
                            (format!("{s} <coverage:{coverage}>"), false, true)
                        }
                        Ok(s) => (s, false, false),
                        Err(e) => (format!("<error:{e}>"), true, false),
                    };
                    local.push(Sample {
                        index: i,
                        query: req.query,
                        ms: t.elapsed_ms(),
                        rendered,
                        errored,
                        degraded,
                        fanout: stats.max_fanout,
                    });
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect()
    })
    .expect("serving scope");
    let wall_ms = wall.elapsed_ms();

    let mut rendered: Vec<Option<String>> = (0..requests.len()).map(|_| None).collect();
    let mut latencies: HashMap<QueryId, Vec<f64>> = HashMap::new();
    let mut fanouts: HashMap<QueryId, u32> = HashMap::new();
    let mut all_ms: Vec<f64> = Vec::with_capacity(requests.len());
    let (mut errors, mut degraded) = (0u64, 0u64);
    for thread_samples in per_thread {
        for sample in thread_samples {
            latencies.entry(sample.query).or_default().push(sample.ms);
            let fan = fanouts.entry(sample.query).or_default();
            *fan = (*fan).max(sample.fanout);
            all_ms.push(sample.ms);
            errors += sample.errored as u64;
            degraded += sample.degraded as u64;
            rendered[sample.index] = Some(sample.rendered);
        }
    }
    let rendered: Vec<String> = rendered
        .into_iter()
        .map(|r| r.expect("every request executed exactly once"))
        .collect();
    let per_query = QueryId::ALL
        .iter()
        .filter_map(|&query| {
            let lat = latencies.get(&query)?;
            Some(QuerySummary {
                query,
                count: lat.len() as u64,
                p50_ms: percentile(lat, 50.0),
                p95_ms: percentile(lat, 95.0),
                p99_ms: percentile(lat, 99.0),
                max_ms: lat.iter().copied().fold(0.0, f64::max),
                max_fanout: fanouts.get(&query).copied().unwrap_or(0),
            })
        })
        .collect();
    let per_class = QueryClass::ALL
        .iter()
        .filter_map(|&class| {
            let lat: Vec<f64> = latencies
                .iter()
                .filter(|(q, _)| q.class() == class)
                .flat_map(|(_, l)| l.iter().copied())
                .collect();
            if lat.is_empty() {
                return None;
            }
            Some(ClassSummary {
                class,
                count: lat.len() as u64,
                p50_ms: percentile(&lat, 50.0),
                p95_ms: percentile(&lat, 95.0),
                p99_ms: percentile(&lat, 99.0),
                deadline_us: config.class_deadlines.effective(class, config.deadline_us),
            })
        })
        .collect();
    Ok(ServeReport {
        engine: engine.name(),
        threads: config.threads,
        requests: requests.len(),
        wall_ms,
        qps: requests.len() as f64 / (wall_ms / 1_000.0).max(1e-9),
        scatter_mode: engine.scatter_mode(),
        replicas: engine.replica_count(),
        p50_ms: percentile(&all_ms, 50.0),
        p95_ms: percentile(&all_ms, 95.0),
        p99_ms: percentile(&all_ms, 99.0),
        per_query,
        per_class,
        rendered,
        deadline_us: config.deadline_us,
        errors,
        degraded,
        faults: engine.fault_stats().since(&faults_before),
    })
}

/// Configuration for a mixed read/write serving run ([`serve_mixed`]).
#[derive(Debug, Clone, Copy)]
pub struct MixedConfig {
    /// Concurrent reader threads (≥ 1).
    pub threads: usize,
    /// Read requests in the stream.
    pub requests: usize,
    /// Stream seed.
    pub seed: u64,
    /// Subject-user id range (`1..=users`; match the dataset).
    pub users: u64,
    /// Hashtag vocabulary size for tag subjects.
    pub vocab: u64,
    /// Events per write batch (≥ 1).
    pub batch: usize,
    /// `true`: batches go through [`MicroblogEngine::apply_event_batch`]
    /// (group commit, DESIGN.md §4j); `false`: the per-event loop — the
    /// semantic oracle the batch-flip tests compare against.
    pub batched: bool,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            threads: 4,
            requests: 256,
            seed: 42,
            users: 100,
            vocab: 16,
            batch: 64,
            batched: true,
        }
    }
}

/// Writer-side summary of a mixed run.
#[derive(Debug, Clone, Copy)]
pub struct WriteSummary {
    /// Events applied.
    pub events: usize,
    /// Events per batch.
    pub batch: usize,
    /// Whether batches used the group-commit path.
    pub batched: bool,
    /// Batches applied.
    pub batches: u64,
    /// Writer wall-clock time (ms).
    pub wall_ms: f64,
    /// Ingest throughput (events per second).
    pub events_per_s: f64,
    /// Median per-batch latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile per-batch latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile per-batch latency (ms).
    pub p99_ms: f64,
    /// Slowest batch (ms).
    pub max_ms: f64,
}

/// Reader-side summary of a mixed run. Individual rendered results during
/// the write burst are timing-dependent (each request sees whatever commit
/// prefix is published when it runs), so only latencies and error counts
/// are reported here — byte-level answers are checked post-quiesce.
#[derive(Debug, Clone, Copy)]
pub struct ReadSummary {
    /// Requests served.
    pub requests: usize,
    /// Reader wall-clock time (ms).
    pub wall_ms: f64,
    /// Aggregate read throughput (requests per second).
    pub qps: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Requests that errored mid-burst (e.g. a subject user that had not
    /// been ingested yet) — expected to be timing-dependent.
    pub errors: u64,
}

/// The result of one mixed read/write run.
#[derive(Debug, Clone)]
pub struct MixedReport {
    /// Engine name.
    pub engine: &'static str,
    /// Reader threads used.
    pub threads: usize,
    /// The engine's write mode (`None` when it has no snapshot toggle).
    pub write_mode: Option<crate::engine::WriteMode>,
    /// Reader-side latencies during the write burst.
    pub reader: ReadSummary,
    /// Writer-side batch latencies and ingest throughput.
    pub writer: WriteSummary,
    /// A deterministic single-threaded serving run executed **after** the
    /// writer drained every event — the byte-comparable artifact. Its
    /// digest must be invariant under every performance toggle (threads,
    /// batch size, batched flag, write mode).
    pub quiesced: ServeReport,
}

impl MixedReport {
    /// Digest of the post-quiesce run — the toggle-invariance fingerprint.
    pub fn digest(&self) -> u64 {
        self.quiesced.digest()
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mode = self
            .write_mode
            .map(|m| format!(", {} writes", m.as_str()))
            .unwrap_or_default();
        let w = &self.writer;
        let r = &self.reader;
        let mut out = format!(
            "== mixed serving: {} — {} reads / {} thread(s){}, {} events @ batch {} ({}) ==\n",
            self.engine,
            r.requests,
            self.threads,
            mode,
            w.events,
            w.batch,
            if w.batched { "group commit" } else { "per event" },
        );
        out.push_str(&format!(
            "reads : {:>8.0} req/s   p50 {:>8.3} ms   p95 {:>8.3} ms   p99 {:>8.3} ms   errors {}\n",
            r.qps, r.p50_ms, r.p95_ms, r.p99_ms, r.errors
        ));
        out.push_str(&format!(
            "writes: {:>8.0} ev/s    p50 {:>8.3} ms   p95 {:>8.3} ms   p99 {:>8.3} ms   batches {}\n",
            w.events_per_s, w.p50_ms, w.p95_ms, w.p99_ms, w.batches
        ));
        out.push_str(&format!("quiesced digest: {:016x}\n", self.digest()));
        out
    }
}

/// Drives a mixed read/write workload: one writer thread drains `events`
/// in `config.batch`-sized chunks (via group commit or the per-event loop)
/// while `config.threads` readers serve the deterministic Q1–Q6 request
/// stream against the same engine. After the writer drains and the readers
/// finish, a single-threaded [`serve`] pass over the quiesced engine
/// produces the byte-comparable answers (`MixedReport::quiesced`) — the
/// artifact every performance toggle must leave untouched.
///
/// Mid-burst rendered results are inherently timing-dependent and are only
/// summarized as latencies/error counts; a writer-side event failure aborts
/// the run with that error.
///
/// # Panics
/// Panics when `config.threads` or `config.batch` is zero, or a thread
/// panics.
pub fn serve_mixed(
    engine: &dyn MicroblogEngine,
    events: &[micrograph_datagen::UpdateEvent],
    config: &MixedConfig,
) -> Result<MixedReport> {
    assert!(config.threads > 0, "mixed serving needs at least one reader thread");
    assert!(config.batch > 0, "write batches need at least one event");
    let requests = request_stream(config.seed, config.requests, config.users, config.vocab);
    let cursor = AtomicUsize::new(0);
    let (write_out, mut all_ms, errors, read_wall_ms) = crossbeam::thread::scope(|s| {
        let writer = s.spawn(|_| -> Result<(Vec<f64>, f64)> {
            let wall = Timer::start();
            let mut lat = Vec::with_capacity(events.len() / config.batch + 1);
            for chunk in events.chunks(config.batch) {
                let t = Timer::start();
                if config.batched {
                    engine.apply_event_batch(chunk)?;
                } else {
                    for event in chunk {
                        engine.apply_event(event)?;
                    }
                }
                lat.push(t.elapsed_ms());
            }
            Ok((lat, wall.elapsed_ms()))
        });
        let read_wall = Timer::start();
        let readers: Vec<_> = (0..config.threads)
            .map(|_| {
                let cursor = &cursor;
                let requests = &requests;
                s.spawn(move |_| {
                    let mut ms = Vec::new();
                    let mut errors = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(req) = requests.get(i) else { break };
                        let t = Timer::start();
                        errors += execute_rendered(engine, req).is_err() as u64;
                        ms.push(t.elapsed_ms());
                    }
                    (ms, errors)
                })
            })
            .collect();
        let mut all_ms = Vec::with_capacity(requests.len());
        let mut errors = 0u64;
        for h in readers {
            let (ms, e) = h.join().expect("reader thread panicked");
            all_ms.extend(ms);
            errors += e;
        }
        let read_wall_ms = read_wall.elapsed_ms();
        let write_out = writer.join().expect("writer thread panicked");
        (write_out, all_ms, errors, read_wall_ms)
    })
    .expect("mixed serving scope");
    let (batch_ms, write_wall_ms) = write_out?;
    all_ms.sort_by(f64::total_cmp);
    let writer = WriteSummary {
        events: events.len(),
        batch: config.batch,
        batched: config.batched,
        batches: batch_ms.len() as u64,
        wall_ms: write_wall_ms,
        events_per_s: events.len() as f64 / (write_wall_ms / 1_000.0).max(1e-9),
        p50_ms: percentile(&batch_ms, 50.0),
        p95_ms: percentile(&batch_ms, 95.0),
        p99_ms: percentile(&batch_ms, 99.0),
        max_ms: batch_ms.iter().copied().fold(0.0, f64::max),
    };
    let reader = ReadSummary {
        requests: requests.len(),
        wall_ms: read_wall_ms,
        qps: requests.len() as f64 / (read_wall_ms / 1_000.0).max(1e-9),
        p50_ms: percentile(&all_ms, 50.0),
        p95_ms: percentile(&all_ms, 95.0),
        p99_ms: percentile(&all_ms, 99.0),
        errors,
    };
    let quiesced = serve(
        engine,
        &ServeConfig {
            threads: 1,
            requests: config.requests,
            seed: config.seed,
            users: config.users,
            vocab: config.vocab,
            deadline_us: None,
            class_deadlines: ClassDeadlines::default(),
        },
    )?;
    Ok(MixedReport {
        engine: engine.name(),
        threads: config.threads,
        write_mode: engine.write_mode(),
        reader,
        writer,
        quiesced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_is_deterministic() {
        let a = request_stream(7, 64, 100, 16);
        let b = request_stream(7, 64, 100, 16);
        assert_eq!(a.len(), 64);
        assert_eq!(a, b);
        let c = request_stream(8, 64, 100, 16);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn class_deadlines_fall_back_to_blanket() {
        let d = ClassDeadlines { scatter_us: Some(40), ..Default::default() };
        assert_eq!(d.effective(QueryClass::Scatter, Some(100)), Some(40));
        assert_eq!(d.effective(QueryClass::Point, Some(100)), Some(100));
        assert_eq!(d.effective(QueryClass::Traversal, None), None);
        assert_eq!(ClassDeadlines::default().effective(QueryClass::Scatter, None), None);
    }

    #[test]
    fn stream_covers_the_catalog() {
        let s = request_stream(3, 512, 100, 16);
        for q in QueryId::ALL {
            assert!(s.iter().any(|r| r.query == q), "{} never sampled", q.label());
        }
    }
}
