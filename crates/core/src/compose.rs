//! The §3.3 derived query: "suppose user A is interested in a topic
//! (represented by a hashtag H) and is looking for users to know more about
//! the topic."
//!
//! The paper sketches it as a composition of the Table 2 queries —
//!
//! 1. hashtags co-occurring with H (Q3.2),
//! 2. the most retweeted tweets carrying those hashtags,
//! 3. the original posters of those tweets (needs `retweets` edges, which
//!    the paper's dataset lacked — our generator can produce them),
//! 4. ordered by shortest-path distance from A (Q6.1)
//!
//! — and notes "our limited data set restricted us in trying more complex
//! queries, such as the one above". With synthetic retweets we can run it.

use std::collections::BTreeSet;

use crate::engine::MicroblogEngine;
use crate::Result;

/// One recommended topic expert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicExpert {
    /// The expert's uid.
    pub uid: i64,
    /// Hops from the asking user (None = not within `max_hops`).
    pub path_len: Option<u32>,
    /// Retweets of the expert's best tweet on the topic.
    pub retweet_count: u64,
    /// That tweet's tid.
    pub tid: i64,
}

/// Runs the composite query: experts on `tag`'s topic for user `from_uid`,
/// at most `n`, ranked by (path length ascending, retweet count descending).
/// Unreachable experts sort last.
pub fn topic_experts(
    engine: &dyn MicroblogEngine,
    from_uid: i64,
    tag: &str,
    n: usize,
    max_hops: u32,
) -> Result<Vec<TopicExpert>> {
    // Step 1: the topic's hashtag neighborhood — H plus its co-occurring tags.
    let mut topic_tags: BTreeSet<String> = BTreeSet::new();
    topic_tags.insert(tag.to_owned());
    for r in engine.co_occurring_hashtags(tag, n)? {
        topic_tags.insert(r.key);
    }

    // Step 2: tweets on the topic, ranked by retweet count.
    let mut tweet_rts: Vec<(i64, u64)> = Vec::new();
    let mut seen_tweets = BTreeSet::new();
    for t in &topic_tags {
        for tid in engine.tweets_with_hashtag(t)? {
            if seen_tweets.insert(tid) {
                tweet_rts.push((tid, engine.retweet_count(tid)?));
            }
        }
    }
    tweet_rts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    tweet_rts.truncate(n * 4); // keep a candidate pool a few times n

    // Step 3: original posters (deduped, keeping their best tweet).
    let mut experts: Vec<TopicExpert> = Vec::new();
    let mut seen_users = BTreeSet::new();
    for (tid, rts) in tweet_rts {
        let uid = engine.poster_of(tid)?;
        if uid == from_uid || !seen_users.insert(uid) {
            continue;
        }
        // Step 4: degrees of separation from A.
        let path_len = engine.shortest_path_len(from_uid, uid, max_hops)?;
        experts.push(TopicExpert { uid, path_len, retweet_count: rts, tid });
        if experts.len() >= n * 2 {
            break;
        }
    }

    experts.sort_by(|a, b| {
        let ka = a.path_len.unwrap_or(u32::MAX);
        let kb = b.path_len.unwrap_or(u32::MAX);
        ka.cmp(&kb)
            .then(b.retweet_count.cmp(&a.retweet_count))
            .then(a.uid.cmp(&b.uid))
    });
    experts.truncate(n);
    Ok(experts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::build_engines;
    use micrograph_datagen::{generate, GenConfig};

    #[test]
    fn composite_runs_and_agrees_across_engines() {
        let mut cfg = GenConfig::unit();
        cfg.users = 120;
        cfg.with_retweets = true;
        cfg.retweet_fraction = 0.5;
        cfg.tags_per_tweet = 0.9;
        let dir = std::env::temp_dir().join(format!("compose-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let files = generate(&cfg).write_csv(&dir).unwrap();
        let (arbor, bit, _) = build_engines(&files).unwrap();
        let a = topic_experts(&arbor, 1, "tag1", 5, 4).unwrap();
        let b = topic_experts(&bit, 1, "tag1", 5, 4).unwrap();
        assert_eq!(a, b, "composite query must agree across engines");
        assert!(!a.is_empty(), "tag1 is the most popular tag; experts expected");
        // Ranking invariant: path lengths ascend (None last).
        for w in a.windows(2) {
            let ka = w[0].path_len.unwrap_or(u32::MAX);
            let kb = w[1].path_len.unwrap_or(u32::MAX);
            assert!(ka <= kb);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
