//! `micrograph-core` — the microblogging query workload of
//! *Microblogging Queries on Graph Databases: An Introspection* (GRADES
//! 2015), runnable on two graph-engine architectures.
//!
//! This crate is the paper's primary contribution, reproduced as a library:
//!
//! * [`schema`] — the Figure 1 data model (`user`/`tweet`/`hashtag` nodes;
//!   `follows`/`posts`/`retweets`/`mentions`/`tags` edges).
//! * [`engine`] — [`engine::MicroblogEngine`]: one trait with every query
//!   of Table 2 (selection, k-step adjacency, co-occurrence,
//!   recommendation, influence, shortest path), implemented by
//! * [`adapters`] — [`adapters::ArborEngine`] (declarative ArborQL over the
//!   record-store engine, plus traversal-API variants and the three §4
//!   recommendation phrasings) and [`adapters::BitEngine`]
//!   (`neighbors`/`explode` navigation with client-side counting/top-n over
//!   the bitmap engine). A load-bearing invariant, enforced by property
//!   tests: **both adapters return identical results** for every query.
//! * [`workload`] — the Table 2 catalog: ids, categories, descriptions,
//!   parameter sampling.
//! * [`runner`] — the paper's measurement protocol: warm up until latency
//!   stabilizes, then average over N runs; plus cold-cache measurement.
//! * [`serve`] — the concurrent serving layer: N reader threads drive a
//!   deterministic mixed Q1–Q6 request stream against one shared
//!   `dyn MicroblogEngine`, reporting per-query latency percentiles and
//!   aggregate throughput (byte-identical results at any thread count).
//! * [`shard`] — the scale-out composition: [`shard::ShardedEngine`]
//!   hash-partitions users across N inner engines and answers every
//!   workload query byte-identically to an unsharded engine via
//!   shard-local kernels plus engine-agnostic merges. Scatter fan-outs run
//!   concurrently by default ([`shard::ScatterMode`]) on a work-stealing
//!   worker pool the caller participates in, with in-shard-order gathers
//!   and max-latency fault accounting keeping every answer
//!   interleaving-independent. Each shard slot holds N replicas: reads
//!   route to a pure-hash primary ([`shard::replica_of`]) and heal
//!   permanent single-replica loss through a deterministic failover
//!   ladder, writes fan out to every replica (a replica that misses one
//!   is torn and fails fast), and answers never move a byte with R.
//! * [`ingest`] — drives both bulk loaders over the same CSV sources
//!   (§3.2), capturing the Figure 2/3 progress curves; also builds
//!   sharded engine pairs from a partitioned dataset.
//! * [`compose`] — the §3.3 derived query (topic experts via co-occurring
//!   hashtags, retweets and path lengths).
//! * [`fault`] — deterministic fault injection ([`fault::ChaosEngine`] under
//!   a seeded [`fault::FaultPlan`]) plus the retry/deadline/degradation
//!   semantics ([`fault::RetryPolicy`], [`fault::DegradationMode`]) the
//!   sharded serving stack uses to survive it. Headline invariant: under
//!   transient faults with retries, answers stay byte-identical to the
//!   fault-free run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod compose;
pub mod engine;
pub mod fault;
pub mod ingest;
pub mod runner;
pub mod schema;
pub mod serve;
pub mod shard;
pub mod workload;

pub use adapters::{ArborEngine, BitEngine};
pub use arbor_ql::ExecMode;
pub use engine::{CoreError, MicroblogEngine, Ranked, WriteMode};
pub use fault::{ChaosEngine, Coverage, DegradationMode, FaultPlan, FaultStats, RetryPolicy};
pub use shard::{ScatterMode, ShardedEngine};
pub use serve::{ServeConfig, ServeReport};
pub use micrograph_common::Value;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
