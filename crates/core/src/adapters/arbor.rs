//! The arbordb adapter: Table 2 through the declarative language.
//!
//! Query texts are fixed strings with `$parameters`, so the plan cache hits
//! on every execution after the first — the configuration the paper
//! recommends. The adapter also exposes:
//!
//! * traversal-framework variants ([`ArborEngine::followees_via_api`],
//!   [`ArborEngine::recommend_followees_via_api`]) — the paper's "alternate
//!   solutions", which trade expressiveness for "a slight improvement in
//!   performance";
//! * the three §4 phrasings of the recommendation query
//!   ([`RecommendationPhrasing`]), where (b) performs best and (c) is the
//!   pathological one.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use arbor_ql::{EngineOptions, ExecMode, Prepared, QueryEngine};
use arbordb::db::GraphDb;
use arbordb::traversal::{shortest_path, Traversal};
use arbordb::{Direction, NodeId, Value};
use micrograph_common::topn::{merge_top_n, Counted, TopKPartial};

use crate::engine::{MicroblogEngine, Ranked};
use crate::{CoreError, Result};

/// The three ways §4 phrases the Q4.1 recommendation query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecommendationPhrasing {
    /// (a) variable-length `[:follows*2..2]` path counting.
    VarLength,
    /// (b) explicit 2-step expansion with an anti-pattern filter — the
    /// phrasing that "was performing the best".
    Canonical,
    /// (c) undirected 2-step expansion filtered afterwards — blows the
    /// intermediate result up and "failed to return a result in a
    /// reasonable time" at the paper's scale.
    Undirected,
}

const Q1_1: &str = "MATCH (u:user) WHERE u.followers > $th RETURN u.uid ORDER BY u.uid";

const Q2_1: &str =
    "MATCH (a:user {uid: $uid})-[:follows]->(f:user) RETURN f.uid ORDER BY f.uid";

const Q2_2: &str = "MATCH (a:user {uid: $uid})-[:follows]->(f)-[:posts]->(t:tweet) \
                    RETURN t.tid ORDER BY t.tid";

const Q2_3: &str =
    "MATCH (a:user {uid: $uid})-[:follows]->(f)-[:posts]->(t)-[:tags]->(h:hashtag) \
     RETURN DISTINCT h.tag ORDER BY h.tag";

const Q3_1: &str =
    "MATCH (a:user {uid: $uid})<-[:mentions]-(t:tweet)-[:mentions]->(b:user) \
     WHERE b.uid <> $uid \
     RETURN b.uid, count(*) AS c ORDER BY c DESC, b.uid ASC LIMIT $n";

const Q3_2: &str =
    "MATCH (g:hashtag {tag: $tag})<-[:tags]-(t:tweet)-[:tags]->(h:hashtag) \
     WHERE h.tag <> $tag \
     RETURN h.tag, count(*) AS c ORDER BY c DESC, h.tag ASC LIMIT $n";

const Q4_1_B: &str = "MATCH (a:user {uid: $uid})-[:follows]->(f)-[:follows]->(r) \
                      WHERE NOT (a)-[:follows]->(r) AND r.uid <> $uid \
                      RETURN r.uid, count(*) AS c ORDER BY c DESC, r.uid ASC LIMIT $n";

const Q4_1_A: &str = "MATCH (a:user {uid: $uid})-[:follows*2..2]->(r) \
                      WHERE NOT (a)-[:follows]->(r) AND r.uid <> $uid \
                      RETURN r.uid, count(*) AS c ORDER BY c DESC, r.uid ASC LIMIT $n";

const Q4_1_C: &str = "MATCH (a:user {uid: $uid})-[:follows*2..2]-(r) \
                      WHERE NOT (a)-[:follows]->(r) AND r.uid <> $uid \
                      RETURN r.uid, count(*) AS c ORDER BY c DESC, r.uid ASC LIMIT $n";

const Q4_2: &str = "MATCH (a:user {uid: $uid})-[:follows]->(f)<-[:follows]-(r) \
                    WHERE NOT (a)-[:follows]->(r) AND r.uid <> $uid \
                    RETURN r.uid, count(*) AS c ORDER BY c DESC, r.uid ASC LIMIT $n";

const Q5_1: &str = "MATCH (p:user)-[:posts]->(t:tweet)-[:mentions]->(a:user {uid: $uid}) \
                    WHERE (p)-[:follows]->(a) AND p.uid <> $uid \
                    RETURN p.uid, count(*) AS c ORDER BY c DESC, p.uid ASC LIMIT $n";

const Q5_2: &str = "MATCH (p:user)-[:posts]->(t:tweet)-[:mentions]->(a:user {uid: $uid}) \
                    WHERE NOT (p)-[:follows]->(a) AND p.uid <> $uid \
                    RETURN p.uid, count(*) AS c ORDER BY c DESC, p.uid ASC LIMIT $n";

const TWEETS_WITH_TAG: &str =
    "MATCH (h:hashtag {tag: $tag})<-[:tags]-(t:tweet) RETURN t.tid ORDER BY t.tid";

const RETWEET_COUNT: &str =
    "MATCH (o:tweet {tid: $tid})<-[:retweets]-(r:tweet) RETURN count(*)";

const POSTER_OF: &str = "MATCH (u:user)-[:posts]->(t:tweet {tid: $tid}) RETURN u.uid";

// ---- shard-local kernel queries (DESIGN.md §4c/§4h) ------------------------
// Set-oriented fragments of Q2/Q3/Q4/Q6: each takes the whole shard-local
// uid batch as ONE list parameter (`IN $uids`, compiled to a multi-anchor
// index seek), so a scatter leg costs one kernel execution instead of one
// per uid. Like the monolithic texts they are fixed strings, covered by
// the prepared-plan cache. Batched texts return the originating anchor as
// a carried column where per-anchor multiplicity matters (the kernel
// contract counts per *occurrence* of an input uid, while `IN` dedups).

const K_POSTED_BATCH: &str = "MATCH (a:user)-[:posts]->(t:tweet) WHERE a.uid IN $uids \
                              RETURN a.uid, t.tid ORDER BY a.uid, t.tid";

const K_TAGS_BATCH: &str =
    "MATCH (a:user)-[:posts]->(t)-[:tags]->(h:hashtag) WHERE a.uid IN $uids \
     RETURN DISTINCT h.tag ORDER BY h.tag";

const K_OUT_COUNTS_BATCH: &str =
    "MATCH (a:user)-[:follows]->(f:user) WHERE a.uid IN $uids \
     RETURN a.uid, f.uid, count(*) AS c ORDER BY a.uid, f.uid";

const K_IN_COUNTS_BATCH: &str =
    "MATCH (x:user)-[:follows]->(a:user) WHERE a.uid IN $uids \
     RETURN a.uid, x.uid, count(*) AS c ORDER BY a.uid, x.uid";

const K_FRONTIER_BATCH: &str = "MATCH (a:user)-[:follows]-(x:user) WHERE a.uid IN $uids \
                                RETURN DISTINCT x.uid ORDER BY x.uid";

// Candidate-probe texts (the TA merge's exact-count phase, DESIGN.md §4f):
// the candidate keys ride along as a second list parameter, filtered
// engine-side, so a probe never recomputes the full local count map.

const K_CO_MENTION_COUNTS_FOR: &str =
    "MATCH (a:user {uid: $uid})<-[:mentions]-(t:tweet)-[:mentions]->(b:user) \
     WHERE b.uid <> $uid AND b.uid IN $keys \
     RETURN b.uid, count(*) AS c ORDER BY b.uid ASC";

const K_CO_TAG_COUNTS_FOR: &str =
    "MATCH (g:hashtag {tag: $tag})<-[:tags]-(t:tweet)-[:tags]->(h:hashtag) \
     WHERE h.tag <> $tag AND h.tag IN $keys \
     RETURN h.tag, count(*) AS c ORDER BY h.tag ASC";

const K_OUT_COUNTS_FOR: &str =
    "MATCH (a:user)-[:follows]->(f:user) WHERE a.uid IN $uids AND f.uid IN $keys \
     RETURN a.uid, f.uid, count(*) AS c ORDER BY a.uid, f.uid";

const K_IN_COUNTS_FOR: &str =
    "MATCH (x:user)-[:follows]->(a:user) WHERE a.uid IN $uids AND x.uid IN $keys \
     RETURN a.uid, x.uid, count(*) AS c ORDER BY a.uid, x.uid";

const K_CO_MENTION: &str =
    "MATCH (a:user {uid: $uid})<-[:mentions]-(t:tweet)-[:mentions]->(b:user) \
     WHERE b.uid <> $uid \
     RETURN b.uid, count(*) AS c ORDER BY b.uid ASC";

const K_CO_TAG: &str =
    "MATCH (g:hashtag {tag: $tag})<-[:tags]-(t:tweet)-[:tags]->(h:hashtag) \
     WHERE h.tag <> $tag \
     RETURN h.tag, count(*) AS c ORDER BY h.tag ASC";

// Top-n pushdown kernels (DESIGN.md §4f) are answered exhaustively here
// (bound 0, DESIGN.md §4h): the grouped count costs the declarative engine
// the same at any LIMIT, partials ship in-process, and a truncated answer
// forces the TA merge into counts_for rounds that re-run the whole
// grouping. Q5's pushdown reuses the monolithic Q5_1/Q5_2 texts, which
// already carry a LIMIT (per-shard candidate sets are disjoint, so its
// merge is single-round regardless of the bound).

/// Lazily prepared plans for the kernel texts a shard fan-out runs hottest:
/// each shard executes the same fixed text per scatter leg, so the adapter
/// parses+plans once and replays the [`Prepared`] handle — no plan-cache
/// lock or text hash per leg (ISSUE 7 satellite).
#[derive(Default)]
struct PreparedKernels {
    influence_current: OnceLock<Prepared>,
    influence_potential: OnceLock<Prepared>,
    posted_batch: OnceLock<Prepared>,
    tags_batch: OnceLock<Prepared>,
    out_counts_batch: OnceLock<Prepared>,
    in_counts_batch: OnceLock<Prepared>,
    frontier_batch: OnceLock<Prepared>,
    co_mention_counts_for: OnceLock<Prepared>,
    co_tag_counts_for: OnceLock<Prepared>,
    out_counts_for: OnceLock<Prepared>,
    in_counts_for: OnceLock<Prepared>,
}

/// How often each uid occurs in a kernel's input list. `IN` dedups its
/// operand, so batched results are scaled back up by this map client-side
/// to keep the per-occurrence kernel contract (a uid listed twice — legal
/// when duplicate follows edges exist upstream — contributes twice).
fn multiplicity(uids: &[i64]) -> HashMap<i64, u64> {
    let mut mult: HashMap<i64, u64> = HashMap::with_capacity(uids.len());
    for &uid in uids {
        *mult.entry(uid).or_insert(0) += 1;
    }
    mult
}

/// Collapses `(key, weighted count)` pairs — sorted by key with possible
/// adjacent duplicates from distinct anchors — into one count per key.
fn merge_count_runs(mut pairs: Vec<(i64, u64)>) -> Vec<(i64, u64)> {
    pairs.sort_unstable();
    let mut merged: Vec<(i64, u64)> = Vec::with_capacity(pairs.len());
    for (key, count) in pairs {
        match merged.last_mut() {
            Some(last) if last.0 == key => last.1 += count,
            _ => merged.push((key, count)),
        }
    }
    merged
}

/// The declarative adapter over [`GraphDb`].
pub struct ArborEngine {
    db: Arc<GraphDb>,
    ql: QueryEngine,
    prep: PreparedKernels,
    /// Whether kernels run their whole uid batch as one `IN $uids` query
    /// (the default) or one singleton query per uid — the pre-batching
    /// baseline kept selectable for the serving-gap artifact.
    batched: std::sync::atomic::AtomicBool,
}

impl ArborEngine {
    /// Wraps a database with the standard engine options (plan cache on).
    pub fn new(db: Arc<GraphDb>) -> Self {
        ArborEngine {
            ql: QueryEngine::new(db.clone()),
            db,
            prep: PreparedKernels::default(),
            batched: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Wraps with explicit options (ablation switches).
    pub fn with_options(db: Arc<GraphDb>, options: EngineOptions) -> Self {
        ArborEngine {
            ql: QueryEngine::with_options(db.clone(), options),
            db,
            prep: PreparedKernels::default(),
            batched: std::sync::atomic::AtomicBool::new(true),
        }
    }

    fn batched_enabled(&self) -> bool {
        self.batched.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Prepares `text` once per engine; a racing second caller just drops
    /// its duplicate plan (both prepared the same fixed text).
    fn prepared<'a>(&self, cell: &'a OnceLock<Prepared>, text: &str) -> Result<&'a Prepared> {
        if let Some(p) = cell.get() {
            return Ok(p);
        }
        let p = self.ql.prepare(text)?;
        Ok(cell.get_or_init(|| p))
    }

    /// The underlying database.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// A shared handle to the database (for building alternate-option
    /// engines over the same store in ablation benches).
    pub fn db_arc(&self) -> Arc<GraphDb> {
        self.db.clone()
    }

    /// The query session (plan-cache stats, EXPLAIN).
    pub fn ql(&self) -> &QueryEngine {
        &self.ql
    }

    fn int_column(&self, text: &str, params: &[(&str, Value)]) -> Result<Vec<i64>> {
        let r = self.ql.query(text, params)?;
        Ok(r.rows
            .iter()
            .map(|row| row[0].as_int().expect("integer column"))
            .collect())
    }

    fn ranked_ints(&self, text: &str, params: &[(&str, Value)]) -> Result<Vec<Ranked<i64>>> {
        let r = self.ql.query(text, params)?;
        Ok(r.rows
            .iter()
            .map(|row| Ranked::new(row[0].as_int().expect("key"), row[1].as_int().expect("count") as u64))
            .collect())
    }

    /// Runs a batched `(anchor, target, count)` kernel text and folds the
    /// grouped rows into one sorted `(target, count)` map, weighting each
    /// anchor's contribution by its multiplicity in `uids`.
    fn grouped_counts(
        &self,
        cell: &OnceLock<Prepared>,
        text: &str,
        uids: &[i64],
        params: &[(&str, Value)],
    ) -> Result<Vec<(i64, u64)>> {
        if uids.is_empty() {
            return Ok(Vec::new());
        }
        let p = self.prepared(cell, text)?;
        let r = self.ql.query_prepared(p, params)?;
        let mult = multiplicity(uids);
        let mut pairs: Vec<(i64, u64)> = Vec::with_capacity(r.rows.len());
        for row in &r.rows {
            let anchor = row[0].as_int().expect("anchor uid");
            let target = row[1].as_int().expect("target uid");
            let count = row[2].as_int().expect("count") as u64;
            pairs.push((target, count * mult[&anchor]));
        }
        Ok(merge_count_runs(pairs))
    }

    /// The pre-batching baseline for a count kernel: one singleton query
    /// per uid, summed client-side.
    fn looped_counts(
        &self,
        uids: &[i64],
        per_uid: impl Fn(i64) -> Result<Vec<(i64, u64)>>,
    ) -> Result<Vec<(i64, u64)>> {
        let mut pairs = Vec::new();
        for &uid in uids {
            pairs.extend(per_uid(uid)?);
        }
        Ok(merge_count_runs(pairs))
    }

    fn node_of_uid(&self, uid: i64) -> Result<Option<NodeId>> {
        Ok(self
            .db
            .index_seek(crate::schema::USER, crate::schema::UID, &Value::Int(uid))
            .and_then(|v| v.into_iter().next()))
    }

    /// User lookup that sees through the group-commit window: property
    /// index updates apply only at commit, so a user node created earlier
    /// in the same batched transaction is invisible to `node_of_uid` —
    /// the batch-local `created` overlay carries exactly those nodes.
    fn find_user(&self, created: &HashMap<i64, NodeId>, uid: i64) -> Result<Option<NodeId>> {
        if let Some(&n) = created.get(&uid) {
            return Ok(Some(n));
        }
        self.node_of_uid(uid)
    }

    /// Stages one event into a live transaction — the shared body of
    /// [`MicroblogEngine::apply_event`] (one transaction per event, the
    /// oracle) and [`MicroblogEngine::apply_event_batch`] (one group-commit
    /// transaction for the whole batch). Page-level writes are visible to
    /// later events immediately (read-uncommitted within the writer);
    /// user-index visibility goes through the `created` overlay.
    fn stage_event(
        &self,
        tx: &mut arbordb::db::WriteTxn<'_>,
        created: &mut HashMap<i64, NodeId>,
        event: &micrograph_datagen::UpdateEvent,
    ) -> Result<()> {
        use micrograph_datagen::UpdateEvent;
        match event {
            UpdateEvent::NewUser { uid, name } => {
                // Upsert: when a placeholder exists (ensure_user ghost, or
                // bump_followers racing ahead of this event), fill in the
                // attributes and keep the accumulated follower count.
                match self.find_user(created, *uid as i64)? {
                    Some(node) => {
                        tx.set_node_prop(node, crate::schema::NAME, Value::Str(name.clone()))?;
                    }
                    None => {
                        let node = tx.create_node(
                            crate::schema::USER,
                            &[
                                (crate::schema::UID, Value::Int(*uid as i64)),
                                (crate::schema::NAME, Value::Str(name.clone())),
                                (crate::schema::FOLLOWERS, Value::Int(0)),
                                (crate::schema::VERIFIED, Value::Int(0)),
                            ],
                        )?;
                        created.insert(*uid as i64, node);
                    }
                }
            }
            UpdateEvent::NewFollow { follower, followee } => {
                let a = self
                    .find_user(created, *follower as i64)?
                    .ok_or_else(|| CoreError::NotFound(format!("user {follower}")))?;
                let b = self
                    .find_user(created, *followee as i64)?
                    .ok_or_else(|| CoreError::NotFound(format!("user {followee}")))?;
                tx.create_rel(a, b, crate::schema::FOLLOWS, &[])?;
                let count = self
                    .db
                    .node_prop(b, crate::schema::FOLLOWERS)?
                    .and_then(|v| v.as_int())
                    .unwrap_or(0);
                tx.set_node_prop(b, crate::schema::FOLLOWERS, Value::Int(count + 1))?;
            }
            UpdateEvent::NewTweet { tid, uid, text, mentions, tags } => {
                let poster = self
                    .find_user(created, *uid as i64)?
                    .ok_or_else(|| CoreError::NotFound(format!("user {uid}")))?;
                let tweet = tx.create_node(
                    crate::schema::TWEET,
                    &[
                        (crate::schema::TID, Value::Int(*tid as i64)),
                        (crate::schema::TEXT, Value::Str(text.clone())),
                    ],
                )?;
                tx.create_rel(poster, tweet, crate::schema::POSTS, &[])?;
                for m in mentions {
                    let target = self
                        .find_user(created, *m as i64)?
                        .ok_or_else(|| CoreError::NotFound(format!("user {m}")))?;
                    tx.create_rel(tweet, target, crate::schema::MENTIONS, &[])?;
                }
                for t in tags {
                    // Hashtags are never created by the stream, so the
                    // committed index is authoritative (no overlay needed).
                    let tag = self
                        .db
                        .index_seek(crate::schema::HASHTAG, crate::schema::TAG, &Value::from(t.as_str()))
                        .and_then(|v| v.into_iter().next())
                        .ok_or_else(|| CoreError::NotFound(format!("hashtag {t}")))?;
                    tx.create_rel(tweet, tag, crate::schema::TAGS, &[])?;
                }
            }
        }
        Ok(())
    }

    /// Runs the Q4.1 recommendation in the given phrasing (ablation D2).
    pub fn recommend_phrasing(
        &self,
        phrasing: RecommendationPhrasing,
        uid: i64,
        n: usize,
    ) -> Result<Vec<Ranked<i64>>> {
        let text = match phrasing {
            RecommendationPhrasing::VarLength => Q4_1_A,
            RecommendationPhrasing::Canonical => Q4_1_B,
            RecommendationPhrasing::Undirected => Q4_1_C,
        };
        self.ranked_ints(text, &[("uid", Value::Int(uid)), ("n", Value::Int(n as i64))])
    }

    // ---- "core API" (traversal framework) variants -------------------------

    /// Q2.1 through the traversal framework instead of the language.
    pub fn followees_via_api(&self, uid: i64) -> Result<Vec<i64>> {
        let _latch = self.db.read_latch();
        let Some(node) = self.node_of_uid(uid)? else { return Ok(Vec::new()) };
        let follows = self.db.rel_type_id(crate::schema::FOLLOWS);
        let visits = Traversal::new(&self.db)
            .expand(follows, Direction::Outgoing)
            .depths(1, 1)
            .traverse(node)?;
        let mut out = Vec::with_capacity(visits.len());
        for v in visits {
            if let Some(u) = self.db.node_prop(v.node, crate::schema::UID)? {
                out.push(u.as_int().expect("uid is an integer"));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Q4.1 through the traversal framework: expand two steps manually,
    /// count, filter, top-n.
    pub fn recommend_followees_via_api(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        let _latch = self.db.read_latch();
        let Some(node) = self.node_of_uid(uid)? else { return Ok(Vec::new()) };
        let follows = self.db.rel_type_id(crate::schema::FOLLOWS);
        let mut followed: Vec<NodeId> = Vec::new();
        for nb in self.db.neighbors(node, follows, Direction::Outgoing) {
            followed.push(nb?);
        }
        let mut counts: HashMap<NodeId, u64> = HashMap::new();
        for &f in &followed {
            for r in self.db.neighbors(f, follows, Direction::Outgoing) {
                let r = r?;
                if r != node && !followed.contains(&r) {
                    *counts.entry(r).or_insert(0) += 1;
                }
            }
        }
        let mut part = Vec::with_capacity(counts.len());
        for (node, count) in counts {
            let u = self
                .db
                .node_prop(node, crate::schema::UID)?
                .and_then(|v| v.as_int())
                .ok_or_else(|| CoreError::NotFound(format!("uid of node {node}")))?;
            part.push(Counted { key: u, count });
        }
        Ok(merge_top_n(vec![part], n).into_iter().map(|c| Ranked::new(c.key, c.count)).collect())
    }
}

impl MicroblogEngine for ArborEngine {
    fn name(&self) -> &'static str {
        "arbordb"
    }

    fn users_with_followers_over(&self, threshold: i64) -> Result<Vec<i64>> {
        self.int_column(Q1_1, &[("th", Value::Int(threshold))])
    }

    fn followees(&self, uid: i64) -> Result<Vec<i64>> {
        self.int_column(Q2_1, &[("uid", Value::Int(uid))])
    }

    fn followee_tweets(&self, uid: i64) -> Result<Vec<i64>> {
        self.int_column(Q2_2, &[("uid", Value::Int(uid))])
    }

    fn followee_hashtags(&self, uid: i64) -> Result<Vec<String>> {
        let r = self.ql.query(Q2_3, &[("uid", Value::Int(uid))])?;
        Ok(r.rows
            .iter()
            .map(|row| row[0].as_str().expect("tag column").to_owned())
            .collect())
    }

    fn co_mentioned_users(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.ranked_ints(Q3_1, &[("uid", Value::Int(uid)), ("n", Value::Int(n as i64))])
    }

    fn co_occurring_hashtags(&self, tag: &str, n: usize) -> Result<Vec<Ranked<String>>> {
        let r = self
            .ql
            .query(Q3_2, &[("tag", Value::from(tag)), ("n", Value::Int(n as i64))])?;
        Ok(r.rows
            .iter()
            .map(|row| {
                Ranked::new(
                    row[0].as_str().expect("tag").to_owned(),
                    row[1].as_int().expect("count") as u64,
                )
            })
            .collect())
    }

    fn recommend_followees(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.recommend_phrasing(RecommendationPhrasing::Canonical, uid, n)
    }

    fn recommend_followers(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.ranked_ints(Q4_2, &[("uid", Value::Int(uid)), ("n", Value::Int(n as i64))])
    }

    fn current_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.ranked_ints(Q5_1, &[("uid", Value::Int(uid)), ("n", Value::Int(n as i64))])
    }

    fn potential_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.ranked_ints(Q5_2, &[("uid", Value::Int(uid)), ("n", Value::Int(n as i64))])
    }

    fn shortest_path_len(&self, a: i64, b: i64, max_hops: u32) -> Result<Option<u32>> {
        // Use the engine's native bidirectional BFS (what the shortestPath
        // plan operator executes) — endpoints via index seeks. This path
        // bypasses the query engine, so it takes the serving read latch
        // itself (the inner db calls are latch-free).
        let _latch = self.db.read_latch();
        let (Some(na), Some(nb)) = (self.node_of_uid(a)?, self.node_of_uid(b)?) else {
            return Ok(None);
        };
        let follows = self.db.rel_type_id(crate::schema::FOLLOWS);
        Ok(shortest_path(&self.db, na, nb, follows, Direction::Both, max_hops)?
            .map(|p| p.len() as u32 - 1))
    }

    fn tweets_with_hashtag(&self, tag: &str) -> Result<Vec<i64>> {
        self.int_column(TWEETS_WITH_TAG, &[("tag", Value::from(tag))])
    }

    fn retweet_count(&self, tid: i64) -> Result<u64> {
        let r = self.ql.query(RETWEET_COUNT, &[("tid", Value::Int(tid))])?;
        Ok(r.rows[0][0].as_int().expect("count") as u64)
    }

    fn poster_of(&self, tid: i64) -> Result<i64> {
        let r = self.ql.query(POSTER_OF, &[("tid", Value::Int(tid))])?;
        r.rows
            .first()
            .map(|row| row[0].as_int().expect("uid"))
            .ok_or_else(|| CoreError::NotFound(format!("poster of tweet {tid}")))
    }

    // ---- shard-local kernels ------------------------------------------------
    // Set-oriented: the whole uid batch goes down as ONE list parameter per
    // kernel call (DESIGN.md §4h); the plan cache covers the fixed texts.

    fn has_user(&self, uid: i64) -> Result<bool> {
        Ok(self.node_of_uid(uid)?.is_some())
    }

    fn posted_tweets_kernel(&self, uids: &[i64]) -> Result<Vec<i64>> {
        if !self.batched_enabled() && uids.len() > 1 {
            let mut out = Vec::new();
            for &uid in uids {
                out.extend(self.posted_tweets_kernel(&[uid])?);
            }
            out.sort_unstable();
            return Ok(out);
        }
        if uids.is_empty() {
            return Ok(Vec::new());
        }
        let p = self.prepared(&self.prep.posted_batch, K_POSTED_BATCH)?;
        let r = self.ql.query_prepared(p, &[("uids", Value::from(uids))])?;
        let mult = multiplicity(uids);
        let mut out = Vec::with_capacity(r.rows.len());
        for row in &r.rows {
            let anchor = row[0].as_int().expect("anchor uid");
            let tid = row[1].as_int().expect("tid");
            for _ in 0..mult[&anchor] {
                out.push(tid);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn hashtags_kernel(&self, uids: &[i64]) -> Result<Vec<String>> {
        if !self.batched_enabled() && uids.len() > 1 {
            let mut tags: Vec<String> = Vec::new();
            for &uid in uids {
                tags.extend(self.hashtags_kernel(&[uid])?);
            }
            tags.sort_unstable();
            tags.dedup();
            return Ok(tags);
        }
        if uids.is_empty() {
            return Ok(Vec::new());
        }
        let p = self.prepared(&self.prep.tags_batch, K_TAGS_BATCH)?;
        let r = self.ql.query_prepared(p, &[("uids", Value::from(uids))])?;
        Ok(r.rows
            .iter()
            .map(|row| row[0].as_str().expect("tag column").to_owned())
            .collect())
    }

    fn count_followees_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>> {
        if !self.batched_enabled() && uids.len() > 1 {
            return self.looped_counts(uids, |uid| self.count_followees_kernel(&[uid]));
        }
        self.grouped_counts(
            &self.prep.out_counts_batch,
            K_OUT_COUNTS_BATCH,
            uids,
            &[("uids", Value::from(uids))],
        )
    }

    fn count_followers_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>> {
        if !self.batched_enabled() && uids.len() > 1 {
            return self.looped_counts(uids, |uid| self.count_followers_kernel(&[uid]));
        }
        self.grouped_counts(
            &self.prep.in_counts_batch,
            K_IN_COUNTS_BATCH,
            uids,
            &[("uids", Value::from(uids))],
        )
    }

    fn co_mention_counts_kernel(&self, uid: i64) -> Result<Vec<(i64, u64)>> {
        let r = self.ql.query(K_CO_MENTION, &[("uid", Value::Int(uid))])?;
        Ok(r.rows
            .iter()
            .map(|row| (row[0].as_int().expect("uid"), row[1].as_int().expect("count") as u64))
            .collect())
    }

    fn co_tag_counts_kernel(&self, tag: &str) -> Result<Vec<(String, u64)>> {
        let r = self.ql.query(K_CO_TAG, &[("tag", Value::from(tag))])?;
        Ok(r.rows
            .iter()
            .map(|row| {
                (
                    row[0].as_str().expect("tag").to_owned(),
                    row[1].as_int().expect("count") as u64,
                )
            })
            .collect())
    }

    fn follow_frontier_kernel(&self, uids: &[i64]) -> Result<Vec<i64>> {
        // One undirected BFS round over locally stored follows edges, as a
        // single batched query (DISTINCT + ORDER BY give the sorted set).
        if !self.batched_enabled() && uids.len() > 1 {
            let mut next: Vec<i64> = Vec::new();
            for &uid in uids {
                next.extend(self.follow_frontier_kernel(&[uid])?);
            }
            next.sort_unstable();
            next.dedup();
            return Ok(next);
        }
        if uids.is_empty() {
            return Ok(Vec::new());
        }
        let p = self.prepared(&self.prep.frontier_batch, K_FRONTIER_BATCH)?;
        let r = self.ql.query_prepared(p, &[("uids", Value::from(uids))])?;
        Ok(r.rows
            .iter()
            .map(|row| row[0].as_int().expect("uid column"))
            .collect())
    }

    // ---- candidate-probe kernels: keys filtered engine-side ----------------

    fn co_mention_counts_for_kernel(&self, uid: i64, keys: &[i64]) -> Result<Vec<(i64, u64)>> {
        if !self.batched_enabled() {
            // Pre-batching baseline: the trait-default shape (full local
            // counts, filtered client-side).
            return Ok(crate::engine::counts_for(self.co_mention_counts_kernel(uid)?, keys));
        }
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let p = self.prepared(&self.prep.co_mention_counts_for, K_CO_MENTION_COUNTS_FOR)?;
        let r = self
            .ql
            .query_prepared(p, &[("uid", Value::Int(uid)), ("keys", Value::from(keys))])?;
        Ok(r.rows
            .iter()
            .map(|row| (row[0].as_int().expect("uid"), row[1].as_int().expect("count") as u64))
            .collect())
    }

    fn co_tag_counts_for_kernel(&self, tag: &str, keys: &[String]) -> Result<Vec<(String, u64)>> {
        if !self.batched_enabled() {
            return Ok(crate::engine::counts_for(self.co_tag_counts_kernel(tag)?, keys));
        }
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let p = self.prepared(&self.prep.co_tag_counts_for, K_CO_TAG_COUNTS_FOR)?;
        let key_list = Value::List(keys.iter().map(|k| Value::from(k.as_str())).collect());
        let r = self.ql.query_prepared(p, &[("tag", Value::from(tag)), ("keys", key_list)])?;
        Ok(r.rows
            .iter()
            .map(|row| {
                (
                    row[0].as_str().expect("tag").to_owned(),
                    row[1].as_int().expect("count") as u64,
                )
            })
            .collect())
    }

    fn count_followees_counts_for_kernel(
        &self,
        uids: &[i64],
        keys: &[i64],
    ) -> Result<Vec<(i64, u64)>> {
        if !self.batched_enabled() {
            return Ok(crate::engine::counts_for(self.count_followees_kernel(uids)?, keys));
        }
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        self.grouped_counts(
            &self.prep.out_counts_for,
            K_OUT_COUNTS_FOR,
            uids,
            &[("uids", Value::from(uids)), ("keys", Value::from(keys))],
        )
    }

    fn count_followers_counts_for_kernel(
        &self,
        uids: &[i64],
        keys: &[i64],
    ) -> Result<Vec<(i64, u64)>> {
        if !self.batched_enabled() {
            return Ok(crate::engine::counts_for(self.count_followers_kernel(uids)?, keys));
        }
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        self.grouped_counts(
            &self.prep.in_counts_for,
            K_IN_COUNTS_FOR,
            uids,
            &[("uids", Value::from(uids)), ("keys", Value::from(keys))],
        )
    }

    // ---- top-n pushdown kernels: LIMIT pushed into the sort operator -------

    fn co_mention_topn_kernel(&self, uid: i64, _k: usize) -> Result<TopKPartial<i64>> {
        // Exhaustive partial (bound 0): the grouped count costs the same at
        // any LIMIT, the partial ships in-process, and a truncated answer
        // would force the TA merge to re-run the grouping as a counts_for
        // round (and again at doubled k) — recomputation costs far more
        // than the unbounded list ever could.
        Ok(crate::engine::pushdown_partial(self.co_mention_counts_kernel(uid)?, &[], usize::MAX))
    }

    fn co_tag_topn_kernel(&self, tag: &str, _k: usize) -> Result<TopKPartial<String>> {
        Ok(crate::engine::pushdown_partial(self.co_tag_counts_kernel(tag)?, &[], usize::MAX))
    }

    fn influence_topn_kernel(&self, uid: i64, current: bool, k: usize) -> Result<TopKPartial<i64>> {
        // Q5's monolithic texts already carry the LIMIT; ask for k+1 rows
        // and read the bound off the extra one.
        let p = if current {
            self.prepared(&self.prep.influence_current, Q5_1)?
        } else {
            self.prepared(&self.prep.influence_potential, Q5_2)?
        };
        let r = self.ql.query_prepared(
            p,
            &[("uid", Value::Int(uid)), ("n", Value::Int(k as i64 + 1))],
        )?;
        let ranked: Vec<Ranked<i64>> = r
            .rows
            .iter()
            .map(|row| {
                Ranked::new(row[0].as_int().expect("key"), row[1].as_int().expect("count") as u64)
            })
            .collect();
        let mut top: Vec<Counted<i64>> =
            ranked.into_iter().map(|r| Counted { key: r.key, count: r.count }).collect();
        let bound = if top.len() > k { top[k].count } else { 0 };
        top.truncate(k);
        Ok(TopKPartial { top, bound })
    }

    fn count_followees_topn_kernel(
        &self,
        uids: &[i64],
        exclude: &[i64],
        _k: usize,
    ) -> Result<TopKPartial<i64>> {
        // Exhaustive partial (bound 0): the grouped count is the same work
        // at any k, the partial ships in-process, and a truncated answer
        // would force the TA merge to re-run this whole query as a
        // counts_for round (and again at doubled k) — recomputation costs
        // far more than the unbounded list ever could.
        Ok(crate::engine::pushdown_partial(self.count_followees_kernel(uids)?, exclude, usize::MAX))
    }

    fn count_followers_topn_kernel(
        &self,
        uids: &[i64],
        exclude: &[i64],
        _k: usize,
    ) -> Result<TopKPartial<i64>> {
        Ok(crate::engine::pushdown_partial(self.count_followers_kernel(uids)?, exclude, usize::MAX))
    }

    fn ensure_user(&self, uid: i64) -> Result<()> {
        if self.node_of_uid(uid)?.is_some() {
            return Ok(());
        }
        let mut tx = self.db.begin_write()?;
        tx.create_node(
            crate::schema::USER,
            &[
                (crate::schema::UID, Value::Int(uid)),
                (crate::schema::NAME, Value::Str(String::new())),
                (crate::schema::FOLLOWERS, Value::Int(0)),
                (crate::schema::VERIFIED, Value::Int(0)),
            ],
        )?;
        tx.commit()?;
        Ok(())
    }

    fn bump_followers(&self, uid: i64, delta: i64) -> Result<()> {
        // Upsert: a cross-shard follow can replay before the owner saw the
        // `new user` event. Create the placeholder and count onto it; the
        // later `NewUser` fills in attributes without resetting the count.
        match self.node_of_uid(uid)? {
            Some(node) => {
                let count = self
                    .db
                    .node_prop(node, crate::schema::FOLLOWERS)?
                    .and_then(|v| v.as_int())
                    .unwrap_or(0);
                let mut tx = self.db.begin_write()?;
                tx.set_node_prop(node, crate::schema::FOLLOWERS, Value::Int(count + delta))?;
                tx.commit()?;
            }
            None => {
                let mut tx = self.db.begin_write()?;
                tx.create_node(
                    crate::schema::USER,
                    &[
                        (crate::schema::UID, Value::Int(uid)),
                        (crate::schema::NAME, Value::Str(String::new())),
                        (crate::schema::FOLLOWERS, Value::Int(delta)),
                        (crate::schema::VERIFIED, Value::Int(0)),
                    ],
                )?;
                tx.commit()?;
            }
        }
        Ok(())
    }

    /// Applies one streaming update transactionally (the paper's future-work
    /// update workload). Keeps the `followers` property consistent with the
    /// incoming `follows` edges, like the generated base data. The write
    /// path serializes on the database's single-writer mutex, so concurrent
    /// readers keep working while an event commits.
    fn apply_event(&self, event: &micrograph_datagen::UpdateEvent) -> Result<()> {
        let mut tx = self.db.begin_write()?;
        // One event per transaction: the overlay starts (and stays) empty —
        // everything the event references committed before it began.
        let mut created = HashMap::new();
        self.stage_event(&mut tx, &mut created, event)?;
        tx.commit()?;
        Ok(())
    }

    /// Group commit (DESIGN.md §4j): the whole batch in ONE buffered
    /// transaction — every WAL record appended and synced under one log
    /// lock acquisition, index and statistics ops published once at
    /// commit. A mid-batch failure rolls back just the failing event (to
    /// its savepoint) and commits the successful prefix, leaving exactly
    /// the state — and returning exactly the error — of the looped oracle.
    fn apply_event_batch(&self, events: &[micrograph_datagen::UpdateEvent]) -> Result<()> {
        if events.is_empty() {
            return Ok(());
        }
        let mut tx = self.db.begin_write_batched()?;
        let mut created = HashMap::new();
        for event in events {
            let sp = tx.savepoint();
            if let Err(e) = self.stage_event(&mut tx, &mut created, event) {
                tx.rollback_to(&sp)?;
                tx.commit()?;
                return Err(e);
            }
        }
        tx.commit()?;
        Ok(())
    }

    fn reset_stats(&self) {
        self.db.reset_stats();
    }

    fn ops_count(&self) -> u64 {
        self.db.stats().db_hits()
    }

    fn drop_caches(&self) -> Result<()> {
        self.db.evict_caches()?;
        Ok(())
    }

    fn exec_mode(&self) -> Option<ExecMode> {
        Some(self.ql.exec_mode())
    }

    fn set_exec_mode(&self, mode: ExecMode) -> bool {
        self.ql.set_exec_mode(mode);
        true
    }

    fn batched_kernels(&self) -> Option<bool> {
        Some(self.batched_enabled())
    }

    fn set_batched_kernels(&self, on: bool) -> bool {
        self.batched.store(on, std::sync::atomic::Ordering::Relaxed);
        true
    }
}
