//! The two engine adapters.
//!
//! [`ArborEngine`] speaks the declarative route the paper used with its
//! first system (ArborQL text with parameters, plan cache warm); it also
//! exposes the imperative traversal-framework variants and the three §4
//! recommendation phrasings for the ablation benches.
//!
//! [`BitEngine`] speaks the imperative route of the second system:
//! `find_object` → `neighbors`/`explode` navigation, hash-map counting, and
//! client-side sorting/limiting ("the entire result set must be retrieved
//! and filtered programmatically to display only the top-n rows").

pub mod arbor;
pub mod bit;

pub use arbor::{ArborEngine, RecommendationPhrasing};
pub use bit::BitEngine;
