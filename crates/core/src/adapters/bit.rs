//! The bitgraph adapter: Table 2 through `neighbors`/`explode` navigation.
//!
//! Everything the language did for the other engine happens client-side
//! here, exactly as §3.3 describes for Sparksee: "a map structure is used
//! for maintaining the required counts. These counts are then sorted to
//! obtain the final result. Its API does not provide the functionality to
//! limit the returned results." Multi-predicate selection is likewise
//! client-side set algebra over `Objects`.
//!
//! The engine's write API is `&mut Graph`, while [`MicroblogEngine`] keeps
//! every method on `&self` so one engine instance can serve many reader
//! threads. The adapter bridges the two with a `parking_lot::RwLock`:
//! queries take the read lock once per call (reads run concurrently),
//! [`MicroblogEngine::apply_event`] takes the write lock. Each public
//! method acquires the lock exactly once and hands the borrowed `&Graph`
//! to helpers — never re-entering the lock, which with a fair rwlock and a
//! waiting writer would deadlock.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use bitgraph::graph::{Condition, EdgesDirection, Graph, Oid};
use bitgraph::traversal::single_pair_shortest_path_bfs;
use micrograph_common::topn::{merge_top_n, Counted, TopKPartial, TopN};
use micrograph_common::Value;
use parking_lot::{RwLock, RwLockReadGuard};

use crate::engine::{MicroblogEngine, Ranked, WriteMode};
use crate::schema;
use crate::{CoreError, Result};

/// Resolved schema handles.
#[derive(Debug, Clone, Copy)]
struct Handles {
    follows: u32,
    posts: u32,
    mentions: u32,
    tags: u32,
    retweets: Option<u32>,
    uid: u32,
    tid: u32,
    tag: u32,
    followers: u32,
}

/// The navigation adapter over a loaded [`Graph`].
///
/// Two read disciplines coexist (DESIGN.md §4j): in
/// [`WriteMode::Snapshot`] (the default) every query clones one `Arc` of
/// the published immutable generation and runs lock-free, so a write burst
/// never blocks a reader; in [`WriteMode::Locked`] queries take the
/// canonical graph's read lock — the pre-snapshot oracle. Writers always
/// mutate the canonical copy under the write lock and, in Snapshot mode,
/// republish a fresh generation at commit.
pub struct BitEngine {
    /// Canonical graph: owns the extent log, takes every write.
    g: RwLock<Graph>,
    /// The published read generation (Snapshot mode). Swapped wholesale at
    /// every commit; the lock is held only long enough to clone the `Arc`.
    snap: RwLock<Arc<Graph>>,
    /// [`WriteMode`] as a u8 (0 = Locked, 1 = Snapshot).
    mode: AtomicU8,
    h: Handles,
}

/// A read view of the graph under either discipline: a borrowed lock guard
/// (Locked) or an owned generation handle (Snapshot). Derefs to [`Graph`]
/// so query code is mode-oblivious.
enum ReadView<'a> {
    Locked(RwLockReadGuard<'a, Graph>),
    Snapshot(Arc<Graph>),
}

impl Deref for ReadView<'_> {
    type Target = Graph;
    fn deref(&self) -> &Graph {
        match self {
            ReadView::Locked(g) => g,
            ReadView::Snapshot(g) => g,
        }
    }
}

fn mode_to_u8(mode: WriteMode) -> u8 {
    match mode {
        WriteMode::Locked => 0,
        WriteMode::Snapshot => 1,
    }
}

fn mode_from_u8(v: u8) -> WriteMode {
    if v == 0 { WriteMode::Locked } else { WriteMode::Snapshot }
}

/// Bounded top-k with a threshold bound — the adapter's client-side answer
/// to the `LIMIT` the navigation API lacks (§3.3): the full count stream
/// still flows through, but only a `k`-entry heap is retained, and the k-th
/// retained count bounds whatever was cut.
fn topk_bounded<K: Ord>(entries: Vec<Counted<K>>, k: usize) -> TopKPartial<K> {
    let offered = entries.len();
    if k == 0 {
        let bound = entries.iter().map(|c| c.count).max().unwrap_or(0);
        return TopKPartial { top: Vec::new(), bound };
    }
    let mut top = TopN::new(k);
    for c in entries {
        top.offer(c.key, c.count);
    }
    let top = top.into_sorted_vec();
    let bound = if offered > k { top.last().map(|c| c.count).unwrap_or(0) } else { 0 };
    TopKPartial { top, bound }
}

impl BitEngine {
    /// Wraps a graph loaded with the standard schema (see
    /// [`crate::ingest`]). Fails when a required type or attribute is
    /// missing.
    pub fn new(g: Graph) -> Result<BitEngine> {
        let ty = |name: &str| {
            g.find_type(name)
                .ok_or_else(|| CoreError::Bit(format!("schema type {name:?} missing")))
        };
        let attr = |owner: u32, name: &str| {
            g.find_attribute(owner, name)
                .ok_or_else(|| CoreError::Bit(format!("attribute {name:?} missing")))
        };
        let user = ty(schema::USER)?;
        let tweet = ty(schema::TWEET)?;
        let hashtag = ty(schema::HASHTAG)?;
        let h = Handles {
            follows: ty(schema::FOLLOWS)?,
            posts: ty(schema::POSTS)?,
            mentions: ty(schema::MENTIONS)?,
            tags: ty(schema::TAGS)?,
            retweets: g.find_type(schema::RETWEETS),
            uid: attr(user, schema::UID)?,
            tid: attr(tweet, schema::TID)?,
            tag: attr(hashtag, schema::TAG)?,
            followers: attr(user, schema::FOLLOWERS)?,
        };
        let snap = RwLock::new(Arc::new(g.snapshot_clone()));
        Ok(BitEngine {
            g: RwLock::new(g),
            snap,
            mode: AtomicU8::new(mode_to_u8(WriteMode::default())),
            h,
        })
    }

    /// Read access to the underlying canonical graph (for examples and
    /// benches).
    ///
    /// The guard holds the engine's read lock: drop it before applying
    /// events, and do not call the engine's own query methods while
    /// holding it in Locked mode (they take the lock themselves).
    pub fn graph(&self) -> RwLockReadGuard<'_, Graph> {
        self.g.read()
    }

    fn load_write_mode(&self) -> WriteMode {
        mode_from_u8(self.mode.load(Ordering::Acquire))
    }

    /// One read view per public query method: an `Arc` clone of the
    /// published generation (Snapshot — no reader ever touches the write
    /// lock) or the canonical read guard (Locked). Acquired exactly once
    /// per call, like the old `self.g.read()` sites.
    fn read(&self) -> ReadView<'_> {
        match self.load_write_mode() {
            WriteMode::Snapshot => ReadView::Snapshot(Arc::clone(&self.snap.read())),
            WriteMode::Locked => ReadView::Locked(self.g.read()),
        }
    }

    /// Republishes the read generation from the canonical graph (Snapshot
    /// mode only; a no-op in Locked mode, where readers see the canonical
    /// copy directly).
    fn publish(&self, g: &Graph) {
        if self.load_write_mode() == WriteMode::Snapshot {
            *self.snap.write() = Arc::new(g.snapshot_clone());
        }
    }

    /// The single write commit path: mutates the canonical graph under the
    /// write lock, then (Snapshot mode) republishes a fresh generation —
    /// even when `f` failed, because a batch may have applied a valid
    /// prefix before the failing event, and that prefix is committed state
    /// the looped oracle exposes too.
    fn with_write<T>(&self, f: impl FnOnce(&mut Graph) -> Result<T>) -> Result<T> {
        let mut g = self.g.write();
        let out = f(&mut g);
        self.publish(&g);
        out
    }

    /// Creates a bare user node (empty name, 0 followers, unverified) —
    /// the placeholder shape `ensure_user`/`bump_followers` upsert and a
    /// later `NewUser` event fills in.
    fn create_placeholder(&self, g: &mut Graph, uid: i64) -> Result<Oid> {
        let user_ty = g.find_type(schema::USER).expect("schema loaded");
        let name_attr = g
            .find_attribute(user_ty, schema::NAME)
            .ok_or_else(|| CoreError::Bit("name attribute missing".into()))?;
        let verified_attr = g
            .find_attribute(user_ty, schema::VERIFIED)
            .ok_or_else(|| CoreError::Bit("verified attribute missing".into()))?;
        let o = g.add_node(user_ty)?;
        g.set_attr(o, self.h.uid, Value::Int(uid))?;
        g.set_attr(o, name_attr, Value::Str(String::new()))?;
        g.set_attr(o, self.h.followers, Value::Int(0))?;
        g.set_attr(o, verified_attr, Value::Int(0))?;
        Ok(o)
    }

    /// Applies one event to the canonical graph — the shared body of
    /// [`MicroblogEngine::apply_event`] (one event per lock hold) and
    /// [`MicroblogEngine::apply_event_batch`] (the whole batch under one
    /// lock hold, one snapshot publish at the end).
    fn stage_event(&self, g: &mut Graph, event: &micrograph_datagen::UpdateEvent) -> Result<()> {
        use micrograph_datagen::UpdateEvent;
        let user_ty = g.find_type(schema::USER).expect("schema loaded");
        let tweet_ty = g.find_type(schema::TWEET).expect("schema loaded");
        let name_attr = g
            .find_attribute(user_ty, schema::NAME)
            .ok_or_else(|| CoreError::Bit("name attribute missing".into()))?;
        let verified_attr = g
            .find_attribute(user_ty, schema::VERIFIED)
            .ok_or_else(|| CoreError::Bit("verified attribute missing".into()))?;
        let text_attr = g
            .find_attribute(tweet_ty, schema::TEXT)
            .ok_or_else(|| CoreError::Bit("text attribute missing".into()))?;
        match event {
            UpdateEvent::NewUser { uid, name } => {
                // Upsert: when a placeholder exists (ensure_user ghost, or
                // bump_followers racing ahead of this event), fill in the
                // attributes and keep the accumulated follower count.
                match g.find_object(self.h.uid, &Value::Int(*uid as i64))? {
                    Some(o) => {
                        g.set_attr(o, name_attr, Value::Str(name.clone()))?;
                    }
                    None => {
                        let o = g.add_node(user_ty)?;
                        g.set_attr(o, self.h.uid, Value::Int(*uid as i64))?;
                        g.set_attr(o, name_attr, Value::Str(name.clone()))?;
                        g.set_attr(o, self.h.followers, Value::Int(0))?;
                        g.set_attr(o, verified_attr, Value::Int(0))?;
                    }
                }
            }
            UpdateEvent::NewFollow { follower, followee } => {
                let a = g
                    .find_object(self.h.uid, &Value::Int(*follower as i64))?
                    .ok_or_else(|| CoreError::NotFound(format!("user {follower}")))?;
                let b = g
                    .find_object(self.h.uid, &Value::Int(*followee as i64))?
                    .ok_or_else(|| CoreError::NotFound(format!("user {followee}")))?;
                g.add_edge(self.h.follows, a, b)?;
                let count = g
                    .get_attr(b, self.h.followers)?
                    .and_then(|v| v.as_int())
                    .unwrap_or(0);
                g.set_attr(b, self.h.followers, Value::Int(count + 1))?;
            }
            UpdateEvent::NewTweet { tid, uid, text, mentions, tags } => {
                // Resolve EVERY referenced entity before the first write:
                // the navigation engine has no transactions, so validating
                // mentions/tags after creating the tweet node would leave a
                // half-applied tweet behind on error (a state divergence
                // the error-path parity tests would catch).
                let poster = g
                    .find_object(self.h.uid, &Value::Int(*uid as i64))?
                    .ok_or_else(|| CoreError::NotFound(format!("user {uid}")))?;
                let mut mention_oids = Vec::with_capacity(mentions.len());
                for m in mentions {
                    mention_oids.push(
                        g.find_object(self.h.uid, &Value::Int(*m as i64))?
                            .ok_or_else(|| CoreError::NotFound(format!("user {m}")))?,
                    );
                }
                let mut tag_oids = Vec::with_capacity(tags.len());
                for tag in tags {
                    tag_oids.push(
                        g.find_object(self.h.tag, &Value::Str(tag.clone()))?
                            .ok_or_else(|| CoreError::NotFound(format!("hashtag {tag}")))?,
                    );
                }
                let t = g.add_node(tweet_ty)?;
                g.set_attr(t, self.h.tid, Value::Int(*tid as i64))?;
                g.set_attr(t, text_attr, Value::Str(text.clone()))?;
                g.add_edge(self.h.posts, poster, t)?;
                for target in mention_oids {
                    g.add_edge(self.h.mentions, t, target)?;
                }
                for h in tag_oids {
                    g.add_edge(self.h.tags, t, h)?;
                }
            }
        }
        Ok(())
    }

    fn user_oid(&self, g: &Graph, uid: i64) -> Result<Option<Oid>> {
        Ok(g.find_object(self.h.uid, &Value::Int(uid))?)
    }

    fn tweet_oid(&self, g: &Graph, tid: i64) -> Result<Option<Oid>> {
        Ok(g.find_object(self.h.tid, &Value::Int(tid))?)
    }

    fn tag_oid(&self, g: &Graph, tag: &str) -> Result<Option<Oid>> {
        Ok(g.find_object(self.h.tag, &Value::Str(tag.to_owned()))?)
    }

    fn uid_of(&self, g: &Graph, oid: Oid) -> Result<i64> {
        g.get_attr(oid, self.h.uid)?
            .and_then(|v| v.as_int())
            .ok_or_else(|| CoreError::Bit(format!("object {oid} has no uid")))
    }

    fn tid_of(&self, g: &Graph, oid: Oid) -> Result<i64> {
        g.get_attr(oid, self.h.tid)?
            .and_then(|v| v.as_int())
            .ok_or_else(|| CoreError::Bit(format!("object {oid} has no tid")))
    }

    fn tag_of(&self, g: &Graph, oid: Oid) -> Result<String> {
        g.get_attr(oid, self.h.tag)?
            .and_then(|v| v.as_str().map(str::to_owned))
            .ok_or_else(|| CoreError::Bit(format!("object {oid} has no tag")))
    }

    fn top_uids(&self, g: &Graph, counts: HashMap<Oid, u64>, n: usize) -> Result<Vec<Ranked<i64>>> {
        // "These counts are then sorted to obtain the final result" — the
        // whole map is ranked client-side, through the same mergeable
        // top-n the sharded layer uses (a single partial here).
        let mut part = Vec::with_capacity(counts.len());
        for (oid, count) in counts {
            part.push(Counted { key: self.uid_of(g, oid)?, count });
        }
        Ok(merge_top_n(vec![part], n).into_iter().map(|c| Ranked::new(c.key, c.count)).collect())
    }

    /// Maps an oid-keyed count map to `(uid, count)` pairs, ascending by
    /// uid — the raw shape the shard-local kernels return.
    fn counts_by_uid(&self, g: &Graph, counts: HashMap<Oid, u64>) -> Result<Vec<(i64, u64)>> {
        let mut out = Vec::with_capacity(counts.len());
        for (oid, count) in counts {
            out.push((self.uid_of(g, oid)?, count));
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Maps an oid-keyed count map to [`Counted`] uid entries, dropping
    /// every uid in `exclude` (ascending-sorted) — the pre-truncation
    /// filter the pushdown kernels need.
    fn counted_uids(
        &self,
        g: &Graph,
        counts: HashMap<Oid, u64>,
        exclude: &[i64],
    ) -> Result<Vec<Counted<i64>>> {
        let mut out = Vec::with_capacity(counts.len());
        for (oid, count) in counts {
            let uid = self.uid_of(g, oid)?;
            if exclude.binary_search(&uid).is_err() {
                out.push(Counted { key: uid, count });
            }
        }
        Ok(out)
    }

    /// Per-edge co-mention counts around user `a` (Q3.1's inner loop),
    /// shared by the monolithic query and the shard-local kernel.
    fn co_mention_counts(&self, g: &Graph, a: Oid) -> Result<HashMap<Oid, u64>> {
        // Step 1: the tweets T mentioning A — per *edge*, so a tweet that
        // mentions A twice contributes twice (multigraph semantics).
        // Step 2: other users mentioned in T, counted per edge.
        let mut counts: HashMap<Oid, u64> = HashMap::new();
        for e1 in g.explode(a, self.h.mentions, EdgesDirection::Ingoing)?.iter() {
            let t = g.peer(e1, a)?;
            for e2 in g.explode(t, self.h.mentions, EdgesDirection::Outgoing)?.iter() {
                let b = g.peer(e2, t)?;
                if b != a {
                    *counts.entry(b).or_insert(0) += 1;
                }
            }
        }
        Ok(counts)
    }

    /// Per-edge hashtag co-occurrence counts around hashtag `g0` (Q3.2's
    /// inner loop), shared by the monolithic query and the kernel.
    fn co_tag_counts(&self, g: &Graph, g0: Oid) -> Result<HashMap<Oid, u64>> {
        let mut counts: HashMap<Oid, u64> = HashMap::new();
        for e1 in g.explode(g0, self.h.tags, EdgesDirection::Ingoing)?.iter() {
            let t = g.peer(e1, g0)?;
            for e2 in g.explode(t, self.h.tags, EdgesDirection::Outgoing)?.iter() {
                let h2 = g.peer(e2, t)?;
                if h2 != g0 {
                    *counts.entry(h2).or_insert(0) += 1;
                }
            }
        }
        Ok(counts)
    }
}

impl MicroblogEngine for BitEngine {
    fn name(&self) -> &'static str {
        "bitgraph"
    }

    fn users_with_followers_over(&self, threshold: i64) -> Result<Vec<i64>> {
        let g = self.read();
        // Single-predicate select; the result set is mapped and sorted here.
        let sel = g.select(self.h.followers, Condition::GreaterThan, &Value::Int(threshold))?;
        let mut out = Vec::with_capacity(sel.count() as usize);
        for oid in sel.iter() {
            out.push(self.uid_of(&g, oid)?);
        }
        out.sort_unstable();
        Ok(out)
    }

    fn followees(&self, uid: i64) -> Result<Vec<i64>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(Vec::new()) };
        let nb = g.neighbors(a, self.h.follows, EdgesDirection::Outgoing)?;
        let mut out = Vec::with_capacity(nb.count() as usize);
        for oid in nb.iter() {
            out.push(self.uid_of(&g, oid)?);
        }
        out.sort_unstable();
        Ok(out)
    }

    fn followee_tweets(&self, uid: i64) -> Result<Vec<i64>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(Vec::new()) };
        let mut out = Vec::new();
        for f in g.neighbors(a, self.h.follows, EdgesDirection::Outgoing)?.iter() {
            for t in g.neighbors(f, self.h.posts, EdgesDirection::Outgoing)?.iter() {
                out.push(self.tid_of(&g, t)?);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn followee_hashtags(&self, uid: i64) -> Result<Vec<String>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(Vec::new()) };
        // One reused Vec + final sort/dedup instead of a tree-set node
        // allocation per insert (the distinct set is built exactly once).
        let mut tags: Vec<String> = Vec::new();
        for f in g.neighbors(a, self.h.follows, EdgesDirection::Outgoing)?.iter() {
            for t in g.neighbors(f, self.h.posts, EdgesDirection::Outgoing)?.iter() {
                for h in g.neighbors(t, self.h.tags, EdgesDirection::Outgoing)?.iter() {
                    tags.push(self.tag_of(&g, h)?);
                }
            }
        }
        tags.sort_unstable();
        tags.dedup();
        Ok(tags)
    }

    fn co_mentioned_users(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(Vec::new()) };
        let counts = self.co_mention_counts(&g, a)?;
        self.top_uids(&g, counts, n)
    }

    fn co_occurring_hashtags(&self, tag: &str, n: usize) -> Result<Vec<Ranked<String>>> {
        let g = self.read();
        let Some(g0) = self.tag_oid(&g, tag)? else { return Ok(Vec::new()) };
        let counts = self.co_tag_counts(&g, g0)?;
        let mut part = Vec::with_capacity(counts.len());
        for (oid, count) in counts {
            part.push(Counted { key: self.tag_of(&g, oid)?, count });
        }
        Ok(merge_top_n(vec![part], n).into_iter().map(|c| Ranked::new(c.key, c.count)).collect())
    }

    fn recommend_followees(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(Vec::new()) };
        // "A separate neighbours call has to be executed for each 1-step
        // followee of A, which makes the execution of this query expensive."
        let followed = g.neighbors(a, self.h.follows, EdgesDirection::Outgoing)?;
        let mut counts: HashMap<Oid, u64> = HashMap::new();
        for f in followed.iter() {
            for r in g.neighbors(f, self.h.follows, EdgesDirection::Outgoing)?.iter() {
                if r != a && !followed.contains(r) {
                    *counts.entry(r).or_insert(0) += 1;
                }
            }
        }
        self.top_uids(&g, counts, n)
    }

    fn recommend_followers(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(Vec::new()) };
        let followed = g.neighbors(a, self.h.follows, EdgesDirection::Outgoing)?;
        let mut counts: HashMap<Oid, u64> = HashMap::new();
        for f in followed.iter() {
            for r in g.neighbors(f, self.h.follows, EdgesDirection::Ingoing)?.iter() {
                if r != a && !followed.contains(r) {
                    *counts.entry(r).or_insert(0) += 1;
                }
            }
        }
        self.top_uids(&g, counts, n)
    }

    fn current_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        let g = self.read();
        self.influence(&g, uid, n, true)
    }

    fn potential_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        let g = self.read();
        self.influence(&g, uid, n, false)
    }

    fn shortest_path_len(&self, a: i64, b: i64, max_hops: u32) -> Result<Option<u32>> {
        let g = self.read();
        let (Some(oa), Some(ob)) = (self.user_oid(&g, a)?, self.user_oid(&g, b)?) else {
            return Ok(None);
        };
        Ok(single_pair_shortest_path_bfs(
            &g,
            oa,
            ob,
            self.h.follows,
            EdgesDirection::Any,
            max_hops,
        )?
        .map(|p| p.len() as u32 - 1))
    }

    fn tweets_with_hashtag(&self, tag: &str) -> Result<Vec<i64>> {
        let g = self.read();
        let Some(h) = self.tag_oid(&g, tag)? else { return Ok(Vec::new()) };
        let mut out = Vec::new();
        for t in g.neighbors(h, self.h.tags, EdgesDirection::Ingoing)?.iter() {
            out.push(self.tid_of(&g, t)?);
        }
        out.sort_unstable();
        Ok(out)
    }

    fn retweet_count(&self, tid: i64) -> Result<u64> {
        let g = self.read();
        let Some(retweets) = self.h.retweets else { return Ok(0) };
        let Some(t) = self.tweet_oid(&g, tid)? else { return Ok(0) };
        Ok(g.degree(t, retweets, EdgesDirection::Ingoing)?)
    }

    fn poster_of(&self, tid: i64) -> Result<i64> {
        let g = self.read();
        let t = self
            .tweet_oid(&g, tid)?
            .ok_or_else(|| CoreError::NotFound(format!("tweet {tid}")))?;
        let posters = g.neighbors(t, self.h.posts, EdgesDirection::Ingoing)?;
        let p = posters
            .iter()
            .next()
            .ok_or_else(|| CoreError::NotFound(format!("poster of tweet {tid}")))?;
        self.uid_of(&g, p)
    }

    // ---- shard-local kernels ------------------------------------------------
    // Each kernel takes the read lock once and reports exactly what this
    // graph stores; the merge layer (shard.rs) owns cross-shard semantics.

    fn has_user(&self, uid: i64) -> Result<bool> {
        let g = self.read();
        Ok(self.user_oid(&g, uid)?.is_some())
    }

    fn posted_tweets_kernel(&self, uids: &[i64]) -> Result<Vec<i64>> {
        let g = self.read();
        let mut out = Vec::new();
        for &uid in uids {
            let Some(u) = self.user_oid(&g, uid)? else { continue };
            for t in g.neighbors(u, self.h.posts, EdgesDirection::Outgoing)?.iter() {
                out.push(self.tid_of(&g, t)?);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn hashtags_kernel(&self, uids: &[i64]) -> Result<Vec<String>> {
        let g = self.read();
        // Accumulate into one Vec reused across the whole uid batch and
        // sort+dedup once at the end — no per-insert tree rebalancing.
        let mut tags: Vec<String> = Vec::new();
        for &uid in uids {
            let Some(u) = self.user_oid(&g, uid)? else { continue };
            for t in g.neighbors(u, self.h.posts, EdgesDirection::Outgoing)?.iter() {
                for h in g.neighbors(t, self.h.tags, EdgesDirection::Outgoing)?.iter() {
                    tags.push(self.tag_of(&g, h)?);
                }
            }
        }
        tags.sort_unstable();
        tags.dedup();
        Ok(tags)
    }

    fn count_followees_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>> {
        let g = self.read();
        let mut counts: HashMap<Oid, u64> = HashMap::new();
        for &uid in uids {
            let Some(u) = self.user_oid(&g, uid)? else { continue };
            for r in g.neighbors(u, self.h.follows, EdgesDirection::Outgoing)?.iter() {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        self.counts_by_uid(&g, counts)
    }

    fn count_followers_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>> {
        let g = self.read();
        let mut counts: HashMap<Oid, u64> = HashMap::new();
        for &uid in uids {
            let Some(u) = self.user_oid(&g, uid)? else { continue };
            for r in g.neighbors(u, self.h.follows, EdgesDirection::Ingoing)?.iter() {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        self.counts_by_uid(&g, counts)
    }

    fn co_mention_counts_kernel(&self, uid: i64) -> Result<Vec<(i64, u64)>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(Vec::new()) };
        let counts = self.co_mention_counts(&g, a)?;
        self.counts_by_uid(&g, counts)
    }

    fn co_tag_counts_kernel(&self, tag: &str) -> Result<Vec<(String, u64)>> {
        let g = self.read();
        let Some(g0) = self.tag_oid(&g, tag)? else { return Ok(Vec::new()) };
        let mut out = Vec::new();
        for (oid, count) in self.co_tag_counts(&g, g0)? {
            out.push((self.tag_of(&g, oid)?, count));
        }
        out.sort_unstable();
        Ok(out)
    }

    fn follow_frontier_kernel(&self, uids: &[i64]) -> Result<Vec<i64>> {
        let g = self.read();
        // Same flat-Vec discipline as `hashtags_kernel`: push every
        // adjacency, sort+dedup once per batch.
        let mut next: Vec<i64> = Vec::new();
        for &uid in uids {
            let Some(u) = self.user_oid(&g, uid)? else { continue };
            for v in g.neighbors(u, self.h.follows, EdgesDirection::Any)?.iter() {
                next.push(self.uid_of(&g, v)?);
            }
        }
        next.sort_unstable();
        next.dedup();
        Ok(next)
    }

    // ---- top-n pushdown kernels: full count stream, bounded retention ------

    fn co_mention_topn_kernel(&self, uid: i64, k: usize) -> Result<TopKPartial<i64>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else {
            return Ok(TopKPartial { top: Vec::new(), bound: 0 });
        };
        let counts = self.co_mention_counts(&g, a)?;
        Ok(topk_bounded(self.counted_uids(&g, counts, &[])?, k))
    }

    fn co_mention_counts_for_kernel(&self, uid: i64, keys: &[i64]) -> Result<Vec<(i64, u64)>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(Vec::new()) };
        let counts = self.co_mention_counts(&g, a)?;
        let mut out = Vec::new();
        for (oid, count) in counts {
            let b = self.uid_of(&g, oid)?;
            if keys.binary_search(&b).is_ok() {
                out.push((b, count));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn co_tag_topn_kernel(&self, tag: &str, k: usize) -> Result<TopKPartial<String>> {
        let g = self.read();
        let Some(g0) = self.tag_oid(&g, tag)? else {
            return Ok(TopKPartial { top: Vec::new(), bound: 0 });
        };
        let counts = self.co_tag_counts(&g, g0)?;
        let mut entries = Vec::with_capacity(counts.len());
        for (oid, count) in counts {
            entries.push(Counted { key: self.tag_of(&g, oid)?, count });
        }
        Ok(topk_bounded(entries, k))
    }

    fn co_tag_counts_for_kernel(&self, tag: &str, keys: &[String]) -> Result<Vec<(String, u64)>> {
        let g = self.read();
        let Some(g0) = self.tag_oid(&g, tag)? else { return Ok(Vec::new()) };
        let mut out = Vec::new();
        for (oid, count) in self.co_tag_counts(&g, g0)? {
            let t = self.tag_of(&g, oid)?;
            if keys.binary_search(&t).is_ok() {
                out.push((t, count));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn count_followees_topn_kernel(
        &self,
        uids: &[i64],
        exclude: &[i64],
        k: usize,
    ) -> Result<TopKPartial<i64>> {
        let g = self.read();
        let mut counts: HashMap<Oid, u64> = HashMap::new();
        for &uid in uids {
            let Some(u) = self.user_oid(&g, uid)? else { continue };
            for r in g.neighbors(u, self.h.follows, EdgesDirection::Outgoing)?.iter() {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        Ok(topk_bounded(self.counted_uids(&g, counts, exclude)?, k))
    }

    fn count_followees_counts_for_kernel(
        &self,
        uids: &[i64],
        keys: &[i64],
    ) -> Result<Vec<(i64, u64)>> {
        let full = self.count_followees_kernel(uids)?;
        Ok(full.into_iter().filter(|(key, _)| keys.binary_search(key).is_ok()).collect())
    }

    fn count_followers_topn_kernel(
        &self,
        uids: &[i64],
        exclude: &[i64],
        k: usize,
    ) -> Result<TopKPartial<i64>> {
        let g = self.read();
        let mut counts: HashMap<Oid, u64> = HashMap::new();
        for &uid in uids {
            let Some(u) = self.user_oid(&g, uid)? else { continue };
            for r in g.neighbors(u, self.h.follows, EdgesDirection::Ingoing)?.iter() {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        Ok(topk_bounded(self.counted_uids(&g, counts, exclude)?, k))
    }

    fn count_followers_counts_for_kernel(
        &self,
        uids: &[i64],
        keys: &[i64],
    ) -> Result<Vec<(i64, u64)>> {
        let full = self.count_followers_kernel(uids)?;
        Ok(full.into_iter().filter(|(key, _)| keys.binary_search(key).is_ok()).collect())
    }

    fn influence_topn_kernel(&self, uid: i64, current: bool, k: usize) -> Result<TopKPartial<i64>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else {
            return Ok(TopKPartial { top: Vec::new(), bound: 0 });
        };
        let counts = self.influence_counts(&g, a, current)?;
        Ok(topk_bounded(self.counted_uids(&g, counts, &[])?, k))
    }

    fn ensure_user(&self, uid: i64) -> Result<()> {
        let mut g = self.g.write();
        if g.find_object(self.h.uid, &Value::Int(uid))?.is_some() {
            // Idempotent no-op: nothing changed, keep the published
            // generation (no clone).
            return Ok(());
        }
        let res = self.create_placeholder(&mut g, uid).map(|_| ());
        self.publish(&g);
        res
    }

    fn bump_followers(&self, uid: i64, delta: i64) -> Result<()> {
        // Upsert: a cross-shard follow can replay before the owner saw the
        // `new user` event. Create the placeholder and count onto it; the
        // later `NewUser` fills in attributes without resetting the count.
        self.with_write(|g| {
            let o = match g.find_object(self.h.uid, &Value::Int(uid))? {
                Some(o) => o,
                None => self.create_placeholder(g, uid)?,
            };
            let count = g.get_attr(o, self.h.followers)?.and_then(|v| v.as_int()).unwrap_or(0);
            g.set_attr(o, self.h.followers, Value::Int(count + delta))?;
            Ok(())
        })
    }

    /// Applies one streaming update (the paper's future-work update
    /// workload) through the navigation engine's write API, behind the
    /// adapter's write lock; in Snapshot mode the commit republishes the
    /// read generation.
    fn apply_event(&self, event: &micrograph_datagen::UpdateEvent) -> Result<()> {
        self.with_write(|g| self.stage_event(g, event))
    }

    /// Group commit (DESIGN.md §4j): the whole batch under ONE write-lock
    /// acquisition and ONE snapshot publish. Stops at the first failing
    /// event — the committed prefix is exactly what the looped oracle
    /// leaves, because each `stage_event` validates every referenced
    /// entity before its first mutation.
    fn apply_event_batch(&self, events: &[micrograph_datagen::UpdateEvent]) -> Result<()> {
        self.with_write(|g| {
            for event in events {
                self.stage_event(g, event)?;
            }
            Ok(())
        })
    }

    fn write_mode(&self) -> Option<WriteMode> {
        Some(self.load_write_mode())
    }

    fn set_write_mode(&self, mode: WriteMode) -> bool {
        if mode == WriteMode::Snapshot {
            // Republish from the canonical graph BEFORE flipping: Locked-
            // mode writes bypass publication, so the stored generation may
            // be stale. Readers keep using the lock until the store below.
            let g = self.g.read();
            *self.snap.write() = Arc::new(g.snapshot_clone());
        }
        self.mode.store(mode_to_u8(mode), Ordering::Release);
        true
    }

    fn reset_stats(&self) {
        self.g.read().reset_stats();
    }

    fn ops_count(&self) -> u64 {
        let g = self.read();
        let s = g.stats();
        s.neighbors_calls
            + s.explode_calls
            + s.find_object_calls
            + s.select_indexed
            + s.select_scans
            + s.values_read
    }

    fn drop_caches(&self) -> Result<()> {
        // The engine serves queries from its in-memory structures; there is
        // no page cache to drop.
        Ok(())
    }
}

impl BitEngine {
    /// Q2.1 expressed through the engine's traversal context instead of
    /// raw navigation — the paper's §4 comparison: "using the raw
    /// navigation operations (neighbors and explode) are slightly more
    /// efficient than expressing the query as a series of traversal
    /// operations ... perhaps due to the overhead involved with the
    /// traversals."
    pub fn followees_via_traversal(&self, uid: i64) -> Result<Vec<i64>> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(Vec::new()) };
        let mut out = Vec::new();
        for v in bitgraph::traversal::TraversalBfs::new(
            &g,
            a,
            self.h.follows,
            EdgesDirection::Outgoing,
            1,
        ) {
            let (node, depth) = v?;
            if depth == 1 {
                out.push(self.uid_of(&g, node)?);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Count of the *distinct* 2-step follows neighborhood via raw
    /// navigation (nested `neighbors` calls + set union).
    pub fn two_step_reach_nav(&self, uid: i64) -> Result<u64> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(0) };
        let first = g.neighbors(a, self.h.follows, EdgesDirection::Outgoing)?;
        let mut reach = first.clone();
        for f in first.iter() {
            reach = reach.union(&g.neighbors(f, self.h.follows, EdgesDirection::Outgoing)?);
        }
        reach.remove(a);
        Ok(reach.count())
    }

    /// The same 2-step reach through the traversal context.
    pub fn two_step_reach_traversal(&self, uid: i64) -> Result<u64> {
        let g = self.read();
        let Some(a) = self.user_oid(&g, uid)? else { return Ok(0) };
        let mut n = 0u64;
        for v in bitgraph::traversal::TraversalBfs::new(
            &g,
            a,
            self.h.follows,
            EdgesDirection::Outgoing,
            2,
        ) {
            let (_, depth) = v?;
            if depth >= 1 {
                n += 1;
            }
        }
        Ok(n)
    }

    fn influence_counts(
        &self,
        g: &Graph,
        a: Oid,
        follows_a: bool,
    ) -> Result<HashMap<Oid, u64>> {
        // "Finding the users who mentioned A, and removing (or retaining)
        // the users who are already following A."
        let mut counts: HashMap<Oid, u64> = HashMap::new();
        for e in g.explode(a, self.h.mentions, EdgesDirection::Ingoing)?.iter() {
            let t = g.peer(e, a)?;
            for p in g.neighbors(t, self.h.posts, EdgesDirection::Ingoing)?.iter() {
                if p == a {
                    continue;
                }
                let is_follower = g.are_adjacent(p, a, self.h.follows, EdgesDirection::Outgoing)?;
                if is_follower == follows_a {
                    *counts.entry(p).or_insert(0) += 1;
                }
            }
        }
        Ok(counts)
    }

    fn influence(&self, g: &Graph, uid: i64, n: usize, follows_a: bool) -> Result<Vec<Ranked<i64>>> {
        let Some(a) = self.user_oid(g, uid)? else { return Ok(Vec::new()) };
        let counts = self.influence_counts(g, a, follows_a)?;
        self.top_uids(g, counts, n)
    }
}
