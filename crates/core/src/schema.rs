//! The Figure 1 schema: names shared by both engine adapters and the
//! ingest pipelines.

/// Node label: users.
pub const USER: &str = "user";
/// Node label: tweets.
pub const TWEET: &str = "tweet";
/// Node label: hashtags.
pub const HASHTAG: &str = "hashtag";

/// Edge type: user → user.
pub const FOLLOWS: &str = "follows";
/// Edge type: user → tweet.
pub const POSTS: &str = "posts";
/// Edge type: tweet → tweet (a retweet pointing at its original).
pub const RETWEETS: &str = "retweets";
/// Edge type: tweet → user.
pub const MENTIONS: &str = "mentions";
/// Edge type: tweet → hashtag.
pub const TAGS: &str = "tags";

/// Property: user external id.
pub const UID: &str = "uid";
/// Property: user screen name.
pub const NAME: &str = "name";
/// Property: user follower count.
pub const FOLLOWERS: &str = "followers";
/// Property: user verified flag (0/1).
pub const VERIFIED: &str = "verified";
/// Property: tweet external id.
pub const TID: &str = "tid";
/// Property: tweet text.
pub const TEXT: &str = "text";
/// Property: hashtag name (doubles as its unique id).
pub const TAG: &str = "tag";

/// All node labels in import order.
pub const NODE_LABELS: [&str; 3] = [USER, TWEET, HASHTAG];
/// All edge types in import order (`follows` first — 80%+ of the edges,
/// the Figure 3(b) marker).
pub const EDGE_TYPES: [&str; 5] = [FOLLOWS, POSTS, MENTIONS, TAGS, RETWEETS];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let mut all: Vec<&str> = NODE_LABELS.iter().chain(EDGE_TYPES.iter()).copied().collect();
        all.sort_unstable();
        let n = all.len();
        all.dedup();
        assert_eq!(all.len(), n);
    }
}
