//! Hash-partitioned composition: shard-local kernels + engine-agnostic merge.
//!
//! The paper introspects two *single-node* architectures; the ROADMAP north
//! star is serving the same workload at production scale, which requires
//! the engines to compose under partitioning. This module is that
//! composition, in three parts (DESIGN.md §4c):
//!
//! 1. **Partitioning** — [`shard_of`] hash-assigns every user to one of N
//!    shards; [`partition_dataset`] splits a generated [`Dataset`] into N
//!    per-shard datasets (tweets ride with their poster, edges with their
//!    routing endpoint, ghost replicas for cross-shard endpoints, hashtag
//!    nodes replicated everywhere).
//! 2. **Kernels** — both adapters expose shard-local partial queries
//!    (`*_kernel` methods on [`MicroblogEngine`]) that report exactly what
//!    one shard stores.
//! 3. **Merge** — [`ShardedEngine`] routes or broadcasts each Q1–Q6 query
//!    to its inner engines and merges the partials (count-sum, frontier
//!    union, distributed-BFS rounds, mergeable top-n with the global
//!    tie-break). It implements [`MicroblogEngine`] itself, so the runner,
//!    the serving layer, benches and the equivalence tests drive it
//!    unchanged through `&dyn MicroblogEngine`.
//!
//! The load-bearing property, pinned by `tests/cross_engine_equivalence.rs`
//! and `tests/concurrent_serving.rs`: a `ShardedEngine` over either backend
//! at any shard count answers every workload query **byte-identically** to
//! the unsharded engine.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use micrograph_common::topn::{merge_top_n, Counted};
use micrograph_datagen::{Dataset, Tweet, User};

use crate::engine::{MicroblogEngine, Ranked};
use crate::{CoreError, Result};

/// The shard owning `uid`: a SplitMix64-finalized hash of the uid modulo
/// the shard count. The finalizer scrambles sequential uids so partitions
/// are balanced; the function is pure, so every layer (ingest routing,
/// query routing, ownership filters) agrees on placement.
pub fn shard_of(uid: i64, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    let mut z = (uid as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Splits a dataset into `shards` per-shard datasets under [`shard_of`].
///
/// Placement rules:
/// * A user lives on its hash shard with real attributes.
/// * A tweet lives on its poster's shard, along with its `posts`,
///   `mentions` and `tags` edges (so every per-tweet pattern — Q3's
///   co-occurrence, Q5's mention counting — is complete on one shard).
/// * A `follows` edge lives on the **follower's** shard (out-edges local,
///   in-edges scattered — the merge layer compensates where it matters).
/// * A `retweets` edge lives on the retweeting poster's shard.
/// * Cross-shard endpoints get **ghost replicas**: a copy of the real user
///   (or, for retweet targets, the real tweet plus its poster) so every
///   local edge resolves. Ghosts never own data — ownership filters
///   (`shard_of(x) == shard index`) exclude them from global answers.
/// * Hashtag nodes are replicated to every shard (they are few, and the
///   update path needs tag lookups to resolve locally).
///
/// The input must be internally consistent (every edge endpoint exists);
/// generated datasets are. Panics otherwise.
pub fn partition_dataset(d: &Dataset, shards: usize) -> Vec<Dataset> {
    assert!(shards > 0, "shard count must be positive");
    let owner = |uid: u64| shard_of(uid as i64, shards);
    let user_by_uid: HashMap<u64, &User> = d.users.iter().map(|u| (u.uid, u)).collect();
    let tweet_by_tid: HashMap<u64, &Tweet> = d.tweets.iter().map(|t| (t.tid, t)).collect();
    let poster_shard = |tid: u64| {
        owner(tweet_by_tid.get(&tid).expect("tweet of edge exists").uid)
    };

    let mut parts: Vec<Dataset> = (0..shards)
        .map(|_| Dataset { hashtags: d.hashtags.clone(), ..Dataset::default() })
        .collect();
    let mut ghost_users: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); shards];
    let mut ghost_tweets: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); shards];

    for u in &d.users {
        parts[owner(u.uid)].users.push(u.clone());
    }
    for t in &d.tweets {
        parts[owner(t.uid)].tweets.push(t.clone());
    }
    for &(a, b) in &d.follows {
        let s = owner(a);
        parts[s].follows.push((a, b));
        if owner(b) != s {
            ghost_users[s].insert(b);
        }
    }
    for &(tid, uid) in &d.mentions {
        let s = poster_shard(tid);
        parts[s].mentions.push((tid, uid));
        if owner(uid) != s {
            ghost_users[s].insert(uid);
        }
    }
    for &(tid, h) in &d.tags {
        parts[poster_shard(tid)].tags.push((tid, h));
    }
    for &(rt, orig) in &d.retweets {
        let s = poster_shard(rt);
        parts[s].retweets.push((rt, orig));
        let target = tweet_by_tid.get(&orig).expect("retweet target exists");
        if owner(target.uid) != s {
            // The target tweet rides along as a ghost, and its poster as a
            // ghost user so the derived `posts` edge resolves. Ghost tweets
            // carry no mention/tag edges here — those stay with the owner.
            ghost_tweets[s].insert(orig);
            ghost_users[s].insert(target.uid);
        }
    }

    for (s, ghosts) in ghost_users.into_iter().enumerate() {
        for uid in ghosts {
            parts[s].users.push(user_by_uid[&uid].clone());
        }
    }
    for (s, ghosts) in ghost_tweets.into_iter().enumerate() {
        for tid in ghosts {
            parts[s].tweets.push(tweet_by_tid[&tid].clone());
        }
    }
    parts
}

fn counted<K: Ord>(pairs: Vec<(K, u64)>) -> Vec<Counted<K>> {
    pairs.into_iter().map(|(key, count)| Counted { key, count }).collect()
}

fn to_ranked<K>(top: Vec<Counted<K>>) -> Vec<Ranked<K>> {
    top.into_iter().map(|c| Ranked::new(c.key, c.count)).collect()
}

/// Q4 merge: sum partial counts, drop the subject and already-followed
/// users, rank with the global tie-break.
fn merge_recommend(
    uid: i64,
    followed: &[i64],
    parts: Vec<Vec<(i64, u64)>>,
    n: usize,
) -> Vec<Ranked<i64>> {
    let followed: BTreeSet<i64> = followed.iter().copied().collect();
    let kept = parts
        .into_iter()
        .map(|part| {
            counted(
                part.into_iter()
                    .filter(|&(r, _)| r != uid && !followed.contains(&r))
                    .collect(),
            )
        })
        .collect();
    to_ranked(merge_top_n(kept, n))
}

/// Sums per-shard `(key, count)` partials into one ascending count list.
fn sum_counts<K: Ord>(parts: Vec<Vec<(K, u64)>>) -> Vec<(K, u64)> {
    let mut totals: BTreeMap<K, u64> = BTreeMap::new();
    for part in parts {
        for (k, c) in part {
            *totals.entry(k).or_insert(0) += c;
        }
    }
    totals.into_iter().collect()
}

/// N inner engines behind one [`MicroblogEngine`] facade.
///
/// Point lookups route to the owner shard; scatter/gather queries broadcast
/// and merge. Every merge sorts (or ranks with the global tie-break), so
/// answers are deterministic and byte-identical to an unsharded engine
/// regardless of shard count — see the per-method comments for why each
/// merge is exact.
pub struct ShardedEngine {
    shards: Vec<Box<dyn MicroblogEngine>>,
    name: &'static str,
}

impl ShardedEngine {
    /// Wraps `shards` inner engines (typically all of the same backend,
    /// each ingested from one [`partition_dataset`] part).
    ///
    /// # Panics
    /// Panics when `shards` is empty.
    pub fn new(shards: Vec<Box<dyn MicroblogEngine>>) -> Self {
        assert!(!shards.is_empty(), "ShardedEngine needs at least one shard");
        // The trait hands out `&'static str`; one leaked label per engine
        // construction is bounded by the number of engines built.
        let name: &'static str =
            Box::leak(format!("sharded[{}/{}]", shards[0].name(), shards.len()).into_boxed_str());
        ShardedEngine { shards, name }
    }

    /// Number of inner shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn owner(&self, uid: i64) -> &dyn MicroblogEngine {
        self.shards[shard_of(uid, self.shards.len())].as_ref()
    }

    /// Buckets uids by owning shard (index = shard index).
    fn route(&self, uids: &[i64]) -> Vec<Vec<i64>> {
        let mut buckets = vec![Vec::new(); self.shards.len()];
        for &u in uids {
            buckets[shard_of(u, self.shards.len())].push(u);
        }
        buckets
    }
}

impl MicroblogEngine for ShardedEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn users_with_followers_over(&self, threshold: i64) -> Result<Vec<i64>> {
        // Broadcast; each shard's answer is filtered to the users it OWNS
        // (ghost replicas carry real follower counts and would otherwise
        // duplicate). Owned sets are disjoint, so concat + sort is exact.
        let n = self.shards.len();
        let mut out = Vec::new();
        for (i, s) in self.shards.iter().enumerate() {
            out.extend(
                s.users_with_followers_over(threshold)?
                    .into_iter()
                    .filter(|&uid| shard_of(uid, n) == i),
            );
        }
        out.sort_unstable();
        Ok(out)
    }

    fn followees(&self, uid: i64) -> Result<Vec<i64>> {
        // All of A's out-edges live on A's shard; ghosts have none.
        self.owner(uid).followees(uid)
    }

    fn followee_tweets(&self, uid: i64) -> Result<Vec<i64>> {
        // Round 1: frontier from the owner. Round 2: route the frontier by
        // ownership — a user's tweets are complete on their own shard.
        let frontier = self.owner(uid).followees(uid)?;
        let mut out = Vec::new();
        for (bucket, s) in self.route(&frontier).into_iter().zip(&self.shards) {
            if !bucket.is_empty() {
                out.extend(s.posted_tweets_kernel(&bucket)?);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn followee_hashtags(&self, uid: i64) -> Result<Vec<String>> {
        let frontier = self.owner(uid).followees(uid)?;
        let mut tags = BTreeSet::new();
        for (bucket, s) in self.route(&frontier).into_iter().zip(&self.shards) {
            if !bucket.is_empty() {
                tags.extend(s.hashtags_kernel(&bucket)?);
            }
        }
        Ok(tags.into_iter().collect())
    }

    fn co_mentioned_users(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        // A co-mention pair can recur on many shards (one per mentioning
        // tweet), so the merge needs the FULL per-shard count maps — the
        // untruncated kernels — before ranking.
        let mut parts = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            parts.push(counted(s.co_mention_counts_kernel(uid)?));
        }
        Ok(to_ranked(merge_top_n(parts, n)))
    }

    fn co_occurring_hashtags(&self, tag: &str, n: usize) -> Result<Vec<Ranked<String>>> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            parts.push(counted(s.co_tag_counts_kernel(tag)?));
        }
        Ok(to_ranked(merge_top_n(parts, n)))
    }

    fn recommend_followees(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        // Frontier from the owner, counting kernels routed by ownership
        // (out-edges are local to their source's shard), then count-sum
        // merge with the not-already-followed filter applied globally.
        let followed = self.owner(uid).followees(uid)?;
        let mut parts = Vec::new();
        for (bucket, s) in self.route(&followed).into_iter().zip(&self.shards) {
            if !bucket.is_empty() {
                parts.push(s.count_followees_kernel(&bucket)?);
            }
        }
        Ok(merge_recommend(uid, &followed, parts, n))
    }

    fn recommend_followers(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        // In-edges are scattered (each lives on its source's shard), so the
        // frontier is BROADCAST; every `follows` edge is stored exactly
        // once globally, so summing per-shard counts is exact.
        let followed = self.owner(uid).followees(uid)?;
        if followed.is_empty() {
            return Ok(Vec::new());
        }
        let mut parts = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            parts.push(s.count_followers_kernel(&followed)?);
        }
        Ok(merge_recommend(uid, &followed, parts, n))
    }

    fn current_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        // A mentioner p's tweets — and the p→A follows edge the filter
        // needs — are all on p's shard, so per-shard candidate sets are
        // DISJOINT and merging the truncated per-shard top-n is exact.
        let mut parts = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            parts.push(counted(
                s.current_influence(uid, n)?.into_iter().map(|r| (r.key, r.count)).collect(),
            ));
        }
        Ok(to_ranked(merge_top_n(parts, n)))
    }

    fn potential_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            parts.push(counted(
                s.potential_influence(uid, n)?.into_iter().map(|r| (r.key, r.count)).collect(),
            ));
        }
        Ok(to_ranked(merge_top_n(parts, n)))
    }

    fn shortest_path_len(&self, a: i64, b: i64, max_hops: u32) -> Result<Option<u32>> {
        // Distributed BFS: each round broadcasts the frontier to every
        // shard (a user's undirected adjacency is split between their own
        // shard's out-edges and other shards' in-edges) and unions the
        // results. Path LENGTH is exploration-order independent, so the
        // round-per-hop schedule reproduces the single-engine answer.
        if !self.owner(a).has_user(a)? || !self.owner(b).has_user(b)? {
            return Ok(None);
        }
        if a == b {
            return Ok(Some(0));
        }
        let mut visited: BTreeSet<i64> = BTreeSet::from([a]);
        let mut frontier = vec![a];
        for depth in 1..=max_hops {
            let mut next = BTreeSet::new();
            for s in &self.shards {
                next.extend(s.follow_frontier_kernel(&frontier)?);
            }
            if next.contains(&b) {
                return Ok(Some(depth));
            }
            frontier = next.into_iter().filter(|&u| visited.insert(u)).collect();
            if frontier.is_empty() {
                return Ok(None);
            }
        }
        Ok(None)
    }

    fn tweets_with_hashtag(&self, tag: &str) -> Result<Vec<i64>> {
        // `tags` edges live only on the owning tweet's shard — disjoint.
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.tweets_with_hashtag(tag)?);
        }
        out.sort_unstable();
        Ok(out)
    }

    fn retweet_count(&self, tid: i64) -> Result<u64> {
        // Each retweet edge is stored once (at the retweeting poster's
        // shard); shards without the tweet report 0.
        let mut total = 0;
        for s in &self.shards {
            total += s.retweet_count(tid)?;
        }
        Ok(total)
    }

    fn poster_of(&self, tid: i64) -> Result<i64> {
        // Ghost tweet replicas keep the real poster uid, so the first
        // shard that knows the tweet answers correctly.
        for s in &self.shards {
            match s.poster_of(tid) {
                Ok(uid) => return Ok(uid),
                Err(CoreError::NotFound(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(CoreError::NotFound(format!("poster of tweet {tid}")))
    }

    // ---- kernels: delegate so sharded engines compose -----------------------

    fn has_user(&self, uid: i64) -> Result<bool> {
        self.owner(uid).has_user(uid)
    }

    fn posted_tweets_kernel(&self, uids: &[i64]) -> Result<Vec<i64>> {
        let mut out = Vec::new();
        for (bucket, s) in self.route(uids).into_iter().zip(&self.shards) {
            if !bucket.is_empty() {
                out.extend(s.posted_tweets_kernel(&bucket)?);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn hashtags_kernel(&self, uids: &[i64]) -> Result<Vec<String>> {
        let mut tags = BTreeSet::new();
        for (bucket, s) in self.route(uids).into_iter().zip(&self.shards) {
            if !bucket.is_empty() {
                tags.extend(s.hashtags_kernel(&bucket)?);
            }
        }
        Ok(tags.into_iter().collect())
    }

    fn count_followees_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>> {
        let mut parts = Vec::new();
        for (bucket, s) in self.route(uids).into_iter().zip(&self.shards) {
            if !bucket.is_empty() {
                parts.push(s.count_followees_kernel(&bucket)?);
            }
        }
        Ok(sum_counts(parts))
    }

    fn count_followers_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            parts.push(s.count_followers_kernel(uids)?);
        }
        Ok(sum_counts(parts))
    }

    fn co_mention_counts_kernel(&self, uid: i64) -> Result<Vec<(i64, u64)>> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            parts.push(s.co_mention_counts_kernel(uid)?);
        }
        Ok(sum_counts(parts))
    }

    fn co_tag_counts_kernel(&self, tag: &str) -> Result<Vec<(String, u64)>> {
        let mut parts = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            parts.push(s.co_tag_counts_kernel(tag)?);
        }
        Ok(sum_counts(parts))
    }

    fn follow_frontier_kernel(&self, uids: &[i64]) -> Result<Vec<i64>> {
        let mut next = BTreeSet::new();
        for s in &self.shards {
            next.extend(s.follow_frontier_kernel(uids)?);
        }
        Ok(next.into_iter().collect())
    }

    fn ensure_user(&self, uid: i64) -> Result<()> {
        self.owner(uid).ensure_user(uid)
    }

    fn bump_followers(&self, uid: i64, delta: i64) -> Result<()> {
        self.owner(uid).bump_followers(uid, delta)
    }

    fn apply_event(&self, event: &micrograph_datagen::UpdateEvent) -> Result<()> {
        use micrograph_datagen::UpdateEvent;
        let n = self.shards.len();
        match event {
            UpdateEvent::NewUser { uid, .. } => self.owner(*uid as i64).apply_event(event),
            UpdateEvent::NewFollow { follower, followee } => {
                let (fa, fb) = (*follower as i64, *followee as i64);
                // Validate both endpoints against their OWNERS, in the same
                // order the unsharded adapters do.
                if !self.owner(fa).has_user(fa)? {
                    return Err(CoreError::NotFound(format!("user {follower}")));
                }
                if !self.owner(fb).has_user(fb)? {
                    return Err(CoreError::NotFound(format!("user {followee}")));
                }
                let (src, dst) = (shard_of(fa, n), shard_of(fb, n));
                if src == dst {
                    self.shards[src].apply_event(event)
                } else {
                    // Edge + ghost followee at the follower's shard. The
                    // inner engine also bumps the ghost's follower count,
                    // which is invisible globally: only Q1 reads the
                    // property, and its merge filters by ownership.
                    self.shards[src].ensure_user(fb)?;
                    self.shards[src].apply_event(event)?;
                    // The real count lives at the owner.
                    self.shards[dst].bump_followers(fb, 1)
                }
            }
            UpdateEvent::NewTweet { uid, mentions, .. } => {
                let poster = *uid as i64;
                let home = shard_of(poster, n);
                if !self.shards[home].has_user(poster)? {
                    return Err(CoreError::NotFound(format!("user {uid}")));
                }
                for m in mentions {
                    let mi = *m as i64;
                    if !self.owner(mi).has_user(mi)? {
                        return Err(CoreError::NotFound(format!("user {m}")));
                    }
                    if shard_of(mi, n) != home {
                        self.shards[home].ensure_user(mi)?;
                    }
                }
                // Hashtags are replicated, so tag lookups resolve locally.
                self.shards[home].apply_event(event)
            }
        }
    }

    fn reset_stats(&self) {
        for s in &self.shards {
            s.reset_stats();
        }
    }

    fn ops_count(&self) -> u64 {
        self.shards.iter().map(|s| s.ops_count()).sum()
    }

    fn drop_caches(&self) -> Result<()> {
        for s in &self.shards {
            s.drop_caches()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7] {
            for uid in 0..500i64 {
                let s = shard_of(uid, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(uid, shards), "must be pure");
            }
        }
    }

    #[test]
    fn shard_of_single_shard_is_zero() {
        for uid in [0i64, 1, 42, 1_000_000] {
            assert_eq!(shard_of(uid, 1), 0);
        }
    }

    #[test]
    fn shard_of_spreads_users() {
        // The finalizer must not collapse sequential uids onto one shard.
        let mut seen = BTreeSet::new();
        for uid in 1..=64i64 {
            seen.insert(shard_of(uid, 4));
        }
        assert_eq!(seen.len(), 4, "64 sequential uids should hit all 4 shards");
    }

    fn tiny() -> Dataset {
        let users = (1..=8u64)
            .map(|uid| User {
                uid,
                name: format!("u{uid}"),
                followers: uid as u32,
                verified: uid == 1,
            })
            .collect();
        let tweets = (1..=8u64)
            .map(|tid| Tweet { tid, uid: (tid % 8) + 1, text: format!("t{tid}") })
            .collect();
        let mut follows = Vec::new();
        for a in 1..=8u64 {
            for b in 1..=8u64 {
                if a != b && (a + b) % 3 != 0 {
                    follows.push((a, b));
                }
            }
        }
        Dataset {
            users,
            tweets,
            hashtags: vec!["alpha".into(), "beta".into()],
            follows,
            mentions: vec![(1, 3), (1, 3), (2, 5), (3, 7), (4, 1), (5, 2)],
            tags: vec![(1, 0), (1, 1), (2, 0), (3, 1), (5, 0)],
            retweets: vec![(2, 1), (3, 1), (4, 2), (6, 5)],
        }
    }

    #[test]
    fn partition_preserves_every_edge_exactly_once() {
        let d = tiny();
        for shards in [1usize, 2, 4] {
            let parts = partition_dataset(&d, shards);
            assert_eq!(parts.len(), shards);
            let sum = |f: fn(&Dataset) -> usize| parts.iter().map(f).sum::<usize>();
            assert_eq!(sum(|p| p.follows.len()), d.follows.len());
            assert_eq!(sum(|p| p.mentions.len()), d.mentions.len());
            assert_eq!(sum(|p| p.tags.len()), d.tags.len());
            assert_eq!(sum(|p| p.retweets.len()), d.retweets.len());
        }
    }

    #[test]
    fn partition_owned_nodes_partition_exactly() {
        let d = tiny();
        for shards in [1usize, 2, 4] {
            let parts = partition_dataset(&d, shards);
            let owned_users: usize = parts
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    p.users.iter().filter(|u| shard_of(u.uid as i64, shards) == i).count()
                })
                .sum();
            let owned_tweets: usize = parts
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    p.tweets.iter().filter(|t| shard_of(t.uid as i64, shards) == i).count()
                })
                .sum();
            assert_eq!(owned_users, d.users.len());
            assert_eq!(owned_tweets, d.tweets.len());
        }
    }

    #[test]
    fn partition_every_local_edge_endpoint_resolves() {
        let d = tiny();
        for shards in [2usize, 4] {
            for (i, p) in partition_dataset(&d, shards).into_iter().enumerate() {
                let users: BTreeSet<u64> = p.users.iter().map(|u| u.uid).collect();
                let tweets: BTreeSet<u64> = p.tweets.iter().map(|t| t.tid).collect();
                assert_eq!(p.hashtags, d.hashtags, "hashtags replicate everywhere");
                for &(a, b) in &p.follows {
                    assert_eq!(shard_of(a as i64, shards), i, "follows routed by source");
                    assert!(users.contains(&a) && users.contains(&b), "shard {i}: {a}->{b}");
                }
                for &(t, u) in &p.mentions {
                    assert!(tweets.contains(&t) && users.contains(&u));
                }
                for &(t, _) in &p.tags {
                    assert!(tweets.contains(&t));
                }
                for &(rt, orig) in &p.retweets {
                    assert!(tweets.contains(&rt) && tweets.contains(&orig));
                }
            }
        }
    }

    #[test]
    fn partition_ghost_users_carry_real_attributes() {
        let d = tiny();
        let by_uid: HashMap<u64, &User> = d.users.iter().map(|u| (u.uid, u)).collect();
        for p in partition_dataset(&d, 4) {
            for u in &p.users {
                assert_eq!(u, by_uid[&u.uid], "replica must equal the original record");
            }
        }
    }

    #[test]
    fn merge_recommend_filters_subject_and_followed() {
        let parts = vec![vec![(1i64, 3u64), (2, 5), (9, 1)], vec![(2, 2), (4, 4)]];
        let out = merge_recommend(9, &[1], parts, 10);
        // 1 is followed, 9 is the subject; 2 sums to 7 across shards.
        assert_eq!(
            out,
            vec![Ranked::new(2, 7), Ranked::new(4, 4)],
        );
    }

    #[test]
    fn sum_counts_merges_ascending() {
        let parts = vec![vec![(3i64, 1u64), (5, 2)], vec![(1, 4), (3, 2)]];
        assert_eq!(sum_counts(parts), vec![(1, 4), (3, 3), (5, 2)]);
    }
}
