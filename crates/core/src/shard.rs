//! Hash-partitioned composition: shard-local kernels + engine-agnostic merge.
//!
//! The paper introspects two *single-node* architectures; the ROADMAP north
//! star is serving the same workload at production scale, which requires
//! the engines to compose under partitioning. This module is that
//! composition, in three parts (DESIGN.md §4c):
//!
//! 1. **Partitioning** — [`shard_of`] hash-assigns every user to one of N
//!    shards; [`partition_dataset`] splits a generated [`Dataset`] into N
//!    per-shard datasets (tweets ride with their poster, edges with their
//!    routing endpoint, ghost replicas for cross-shard endpoints, hashtag
//!    nodes replicated everywhere).
//! 2. **Kernels** — both adapters expose shard-local partial queries
//!    (`*_kernel` methods on [`MicroblogEngine`]) that report exactly what
//!    one shard stores.
//! 3. **Merge** — [`ShardedEngine`] routes or broadcasts each Q1–Q6 query
//!    to its inner engines and merges the partials (count-sum, frontier
//!    union, distributed-BFS rounds, mergeable top-n with the global
//!    tie-break). It implements [`MicroblogEngine`] itself, so the runner,
//!    the serving layer, benches and the equivalence tests drive it
//!    unchanged through `&dyn MicroblogEngine`.
//!
//! The load-bearing property, pinned by `tests/cross_engine_equivalence.rs`
//! and `tests/concurrent_serving.rs`: a `ShardedEngine` over either backend
//! at any shard count answers every workload query **byte-identically** to
//! the unsharded engine.
//!
//! Scatter fan-outs execute either sequentially or concurrently
//! ([`ScatterMode`], DESIGN.md §4e): a persistent work-stealing pool sized
//! to the spare cores, with the caller claiming and running any slot the
//! workers have not picked up yet. Both paths gather partials **in shard
//! order** and run every merge on the caller thread, so the answer bytes
//! never depend on thread interleaving; the parallel path charges the
//! **max** virtual latency across concurrent shard calls (plus merge
//! cost) instead of the sum.
//!
//! Tail latency (DESIGN.md §4f) is engineered with two answer-neutral
//! levers: **deterministic hedged requests** ([`hedged_call`] — a scatter
//! shard call whose virtual spend exceeds the armed threshold races a
//! re-issued copy, and the winner's *time* is charged while the primary's
//! *bytes* stand) and **per-shard top-n pushdown** ([`pushdown_top_n`] — a
//! threshold-algorithm merge over bounded `*_topn_kernel` partials that
//! replaces full per-shard count maps for Q3/Q4/Q5). Both are on/off
//! togglable at runtime and flipping either never moves a digest.
//!
//! Replication (DESIGN.md §4i): every shard slot holds a [`ReplicaGroup`]
//! — R engines ingested from the **same** partition dataset
//! ([`ShardedEngine::new_replicated`]; plain [`ShardedEngine::new`] builds
//! single-replica groups, so R = 1 behavior is untouched). Reads route to
//! a deterministic primary replica ([`replica_of`] — a pure hash of the
//! query's routing key and the shard index), spreading traffic across the
//! group so read qps scales with R, and fail over along a deterministic
//! ladder ([`replica_call`], attempt band [`FAILOVER_ATTEMPT_BASE`]) when
//! a replica stays `Unavailable` after retries — so Strict mode survives
//! the permanent loss of any single replica of every shard with
//! byte-identical answers (pinned by `tests/chaos_serving.rs`). Writes fan
//! out to every replica of the owning shard; a replica that misses a write
//! the group accepted is marked **torn** and never serves again — failing
//! fast beats serving stale.

use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use crossbeam::channel;
use micrograph_common::topn::{merge_top_n, Counted, TopKPartial};
use micrograph_datagen::{Dataset, Tweet, User};

use crate::engine::{MicroblogEngine, Ranked};
use crate::fault::{self, DegradationMode, FaultCounters, FaultStats, RetryPolicy};
use crate::{CoreError, Result};

/// The shard owning `uid`: a SplitMix64-finalized hash of the uid modulo
/// the shard count. The finalizer scrambles sequential uids so partitions
/// are balanced; the function is pure, so every layer (ingest routing,
/// query routing, ownership filters) agrees on placement.
pub fn shard_of(uid: i64, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    let mut z = (uid as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Splits a dataset into `shards` per-shard datasets under [`shard_of`].
///
/// Placement rules:
/// * A user lives on its hash shard with real attributes.
/// * A tweet lives on its poster's shard, along with its `posts`,
///   `mentions` and `tags` edges (so every per-tweet pattern — Q3's
///   co-occurrence, Q5's mention counting — is complete on one shard).
/// * A `follows` edge lives on the **follower's** shard (out-edges local,
///   in-edges scattered — the merge layer compensates where it matters).
/// * A `retweets` edge lives on the retweeting poster's shard.
/// * Cross-shard endpoints get **ghost replicas**: a copy of the real user
///   (or, for retweet targets, the real tweet plus its poster) so every
///   local edge resolves. Ghosts never own data — ownership filters
///   (`shard_of(x) == shard index`) exclude them from global answers.
/// * Hashtag nodes are replicated to every shard (they are few, and the
///   update path needs tag lookups to resolve locally).
///
/// The input must be internally consistent (every edge endpoint exists);
/// generated datasets are. Panics otherwise.
pub fn partition_dataset(d: &Dataset, shards: usize) -> Vec<Dataset> {
    assert!(shards > 0, "shard count must be positive");
    let owner = |uid: u64| shard_of(uid as i64, shards);
    let user_by_uid: HashMap<u64, &User> = d.users.iter().map(|u| (u.uid, u)).collect();
    let tweet_by_tid: HashMap<u64, &Tweet> = d.tweets.iter().map(|t| (t.tid, t)).collect();
    let poster_shard = |tid: u64| {
        owner(tweet_by_tid.get(&tid).expect("tweet of edge exists").uid)
    };

    let mut parts: Vec<Dataset> = (0..shards)
        .map(|_| Dataset { hashtags: d.hashtags.clone(), ..Dataset::default() })
        .collect();
    let mut ghost_users: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); shards];
    let mut ghost_tweets: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); shards];

    for u in &d.users {
        parts[owner(u.uid)].users.push(u.clone());
    }
    for t in &d.tweets {
        parts[owner(t.uid)].tweets.push(t.clone());
    }
    for &(a, b) in &d.follows {
        let s = owner(a);
        parts[s].follows.push((a, b));
        if owner(b) != s {
            ghost_users[s].insert(b);
        }
    }
    for &(tid, uid) in &d.mentions {
        let s = poster_shard(tid);
        parts[s].mentions.push((tid, uid));
        if owner(uid) != s {
            ghost_users[s].insert(uid);
        }
    }
    for &(tid, h) in &d.tags {
        parts[poster_shard(tid)].tags.push((tid, h));
    }
    for &(rt, orig) in &d.retweets {
        let s = poster_shard(rt);
        parts[s].retweets.push((rt, orig));
        let target = tweet_by_tid.get(&orig).expect("retweet target exists");
        if owner(target.uid) != s {
            // The target tweet rides along as a ghost, and its poster as a
            // ghost user so the derived `posts` edge resolves. Ghost tweets
            // carry no mention/tag edges here — those stay with the owner.
            ghost_tweets[s].insert(orig);
            ghost_users[s].insert(target.uid);
        }
    }

    for (s, ghosts) in ghost_users.into_iter().enumerate() {
        for uid in ghosts {
            parts[s].users.push(user_by_uid[&uid].clone());
        }
    }
    for (s, ghosts) in ghost_tweets.into_iter().enumerate() {
        for tid in ghosts {
            parts[s].tweets.push(tweet_by_tid[&tid].clone());
        }
    }
    parts
}

fn counted<K: Ord>(pairs: Vec<(K, u64)>) -> Vec<Counted<K>> {
    pairs.into_iter().map(|(key, count)| Counted { key, count }).collect()
}

fn to_ranked<K>(top: Vec<Counted<K>>) -> Vec<Ranked<K>> {
    top.into_iter().map(|c| Ranked::new(c.key, c.count)).collect()
}

/// Q4 merge: sum partial counts, drop the subject and already-followed
/// users, rank with the global tie-break.
fn merge_recommend(
    uid: i64,
    followed: &[i64],
    parts: Vec<Vec<(i64, u64)>>,
    n: usize,
) -> Vec<Ranked<i64>> {
    let followed: BTreeSet<i64> = followed.iter().copied().collect();
    let kept = parts
        .into_iter()
        .map(|part| {
            counted(
                part.into_iter()
                    .filter(|&(r, _)| r != uid && !followed.contains(&r))
                    .collect(),
            )
        })
        .collect();
    to_ranked(merge_top_n(kept, n))
}

/// Q4's kernel-side exclusion set: the subject plus everyone they already
/// follow, sorted ascending (the `*_topn_kernel` contract) and deduped.
fn exclusion_list(uid: i64, followed: &[i64]) -> Vec<i64> {
    let mut exclude: Vec<i64> = followed.iter().copied().chain([uid]).collect();
    exclude.sort_unstable();
    exclude.dedup();
    exclude
}

/// Threshold-algorithm (TA) top-n merge over bounded per-shard partials
/// (DESIGN.md §4f). Round-trips the shards with doubling `k` until the
/// summed truncation bounds prove no unseen key can alter the top-n:
///
/// * `bound_sum == 0` — every answering shard sent its complete (filtered)
///   count list, so the count-sum merge of the partials is exact.
/// * Otherwise fetch exact global counts for the candidate union and stop
///   once the n-th candidate **strictly** exceeds `bound_sum`: an unseen
///   key's global count is at most the sum of per-shard bounds, and the
///   strict inequality protects the ascending-key tie order (a tied
///   unseen key with a smaller key would rank ahead of a seen one).
///
/// Termination: `k` doubles each round, so the bounds reach 0 once `k`
/// covers the largest shard-local candidate list. Under Partial
/// degradation lost shards simply contribute no partial (and no bound) —
/// the loop still terminates and degrades exactly like the full-map path:
/// best effort over the shards that answered.
///
/// The opening `k = max(4n, 16)` is deliberately deep: a shard whose list
/// fits inside it answers exhaustively (bound 0), so the common small-map
/// case settles in ONE fan-out — the same dispatch count as the full-map
/// merge with a fraction of its merge work — and only genuinely heavy
/// candidate sets pay the extra exact-count round.
fn pushdown_top_n<K: Ord + Clone>(
    n: usize,
    mut topn_fetch: impl FnMut(usize) -> Result<Vec<TopKPartial<K>>>,
    mut counts_fetch: impl FnMut(Arc<Vec<K>>) -> Result<Vec<Vec<(K, u64)>>>,
) -> Result<Vec<Counted<K>>> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut k = n.saturating_mul(4).max(16);
    loop {
        let partials = topn_fetch(k)?;
        let bound_sum = partials.iter().fold(0u64, |a, p| a.saturating_add(p.bound));
        let tops: Vec<Vec<Counted<K>>> = partials.into_iter().map(|p| p.top).collect();
        if bound_sum == 0 {
            return Ok(merge_top_n(tops, n));
        }
        // Phase 2: exact global counts for every candidate any shard
        // surfaced (the kernels expect the keys sorted ascending).
        let mut keys: Vec<K> =
            tops.iter().flat_map(|t| t.iter().map(|c| c.key.clone())).collect();
        keys.sort_unstable();
        keys.dedup();
        let counts = counts_fetch(Arc::new(keys))?;
        let merged = merge_top_n(counts.into_iter().map(counted).collect(), n);
        if merged.len() == n && merged[n - 1].count > bound_sum {
            return Ok(merged);
        }
        k = k.saturating_mul(2);
    }
}

/// Sums per-shard `(key, count)` partials into one ascending count list.
/// Pre-sizes from the partial lengths and merges adjacent runs of one flat
/// sort instead of paying a tree-map allocation per key.
fn sum_counts<K: Ord>(parts: Vec<Vec<(K, u64)>>) -> Vec<(K, u64)> {
    let mut all: Vec<(K, u64)> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        all.extend(part);
    }
    all.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, u64)> = Vec::with_capacity(all.len());
    for (k, c) in all {
        match out.last_mut() {
            Some(last) if last.0 == k => last.1 += c,
            _ => out.push((k, c)),
        }
    }
    out
}

/// Concatenates disjoint per-shard partials into one pre-sized ascending
/// list — the merge for every scatter whose per-shard answers cannot
/// overlap (ownership-filtered or edge-disjoint).
fn concat_sorted<T: Ord>(parts: Vec<Vec<T>>) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        out.extend(part);
    }
    out.sort_unstable();
    out
}

/// Unions per-shard sorted-distinct partials into one ascending distinct
/// list — flat sort + dedup over a pre-sized Vec instead of a tree-set
/// insert (and its node allocation) per element.
fn merge_sorted_distinct<T: Ord>(parts: Vec<Vec<T>>) -> Vec<T> {
    let mut out = concat_sorted(parts);
    out.dedup();
    out
}

/// Renders a caught panic payload for an `Unavailable` message.
fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// How [`ShardedEngine`] executes scatter fan-outs.
///
/// Both modes gather partials in shard order and merge on the caller
/// thread, so they produce byte-identical answers; `Sequential` is kept as
/// the oracle the equivalence tests compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScatterMode {
    /// Visit selected shards one at a time on the caller thread. Virtual
    /// fan-out latency is the **sum** of per-shard costs.
    Sequential,
    /// Fan out to the persistent worker pool: every selected shard call
    /// (retries included) runs under a snapshot of the caller's deadline
    /// budget, workers and the caller *compete* to claim slots (the caller
    /// steals unclaimed work inline, in shard order, so a slow wakeup
    /// never costs more than running sequentially), and the caller charges
    /// the **max** spend across the concurrent calls. The default.
    #[default]
    Parallel,
}

impl ScatterMode {
    /// Short label for reports/benches ("seq" / "par").
    pub fn label(self) -> &'static str {
        match self {
            ScatterMode::Sequential => "seq",
            ScatterMode::Parallel => "par",
        }
    }

    fn from_u8(v: u8) -> Self {
        if v == 0 { ScatterMode::Sequential } else { ScatterMode::Parallel }
    }

    fn to_u8(self) -> u8 {
        match self {
            ScatterMode::Sequential => 0,
            ScatterMode::Parallel => 1,
        }
    }
}

/// One unit of work shipped to the pool: a claim-guarded shard call plus
/// result delivery, with all captures (engine `Arc` included) owned.
type Task = Box<dyn FnOnce() + Send>;

/// A small pool of persistent worker threads behind one shared MPMC
/// channel. Sized to the spare cores (`available_parallelism - 1`, capped
/// at the shard count) rather than one-per-shard: the scatter caller
/// participates in its own fan-out by stealing unclaimed slots, so the
/// pool only needs to cover the *other* cores — oversubscribing them just
/// adds wakeups and context switches.
struct WorkerPool {
    sender: Option<channel::Sender<Task>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(max_workers: usize) -> Self {
        let spare = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2) - 1;
        let workers = spare.max(1).min(max_workers.max(1));
        let (tx, rx) = channel::unbounded::<Task>();
        let handles = (0..workers)
            .map(|k| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("scatter-worker-{k}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            // Tasks catch their own panics (the retry
                            // boundary); this guard only keeps a
                            // pathological escape from killing the worker
                            // and deadlocking later gathers.
                            let _ = catch_unwind(AssertUnwindSafe(task));
                        }
                    })
                    .expect("spawn scatter worker")
            })
            .collect();
        WorkerPool { sender: Some(tx), handles }
    }

    /// Enqueues a task; false when every worker is gone (the caller then
    /// runs the slot inline via the claim pass).
    fn submit(&self, task: Task) -> bool {
        match &self.sender {
            Some(tx) => tx.send(task).is_ok(),
            None => false,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect first (workers drain, then exit), then join.
        self.sender = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One shard call under `policy`. Panics are caught and converted to
/// [`CoreError::Unavailable`]; retryable errors retry up to `max_attempts`
/// with exponential backoff charged to the ambient budget; semantic errors
/// and timeouts propagate immediately. Free-standing so both the caller
/// thread (sequential scatter, point calls) and pool workers (parallel
/// scatter) run the identical loop.
///
/// The fault-injection layer gates *before* touching the inner engine, so
/// retrying a write through here never double-applies it.
fn retry_call<T>(
    shard: usize,
    engine: &dyn MicroblogEngine,
    policy: &RetryPolicy,
    counters: &FaultCounters,
    op: impl FnMut(&dyn MicroblogEngine) -> Result<T>,
) -> Result<T> {
    retry_call_from(shard, engine, policy, counters, 0, op)
}

/// [`retry_call`] with the ambient attempt index offset by `base_attempt`.
/// The local loop still counts `0..max_attempts` for backoff and give-up
/// purposes; only what the fault schedule *sees* is shifted — the hook
/// hedged requests use to look like a fresh request rather than a replay.
fn retry_call_from<T>(
    shard: usize,
    engine: &dyn MicroblogEngine,
    policy: &RetryPolicy,
    counters: &FaultCounters,
    base_attempt: u32,
    mut op: impl FnMut(&dyn MicroblogEngine) -> Result<T>,
) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        // AssertUnwindSafe: on unwind the closure's captures are either
        // dropped (locals) or `&dyn` shared state whose engines guarantee
        // no torn writes (chaos faults fire before the inner call; inner
        // locks are not poisoned).
        let result = catch_unwind(AssertUnwindSafe(|| {
            fault::with_attempt(base_attempt + attempt, || op(engine))
        }))
        .unwrap_or_else(|payload| {
            counters.note_panic_caught();
            Err(CoreError::Unavailable(format!(
                "shard {shard} panicked: {}",
                panic_payload(payload.as_ref())
            )))
        });
        match result {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt + 1 < policy.max_attempts => {
                counters.note_retry();
                fault::charge(policy.backoff_us(attempt))?;
                attempt += 1;
            }
            Err(e) => {
                if e.is_retryable() {
                    counters.note_exhausted();
                }
                return Err(e);
            }
        }
    }
}

/// Attempt-index offset for hedge ladders: past any plausible retry count,
/// so `FaultPlan::decide` treats the hedge as a *fresh* request — transient
/// bursts (which fail the first `transient_burst` attempts) look healthy,
/// modelling a re-issue that lands on a replica that is not mid-hiccup.
/// Permanent faults ignore the attempt index, so a hedge never masks them.
const HEDGE_ATTEMPT_BASE: u32 = 32;

/// One scatter shard call with **deterministic hedging** (DESIGN.md §4f).
///
/// The primary retry ladder runs first, metered against (a snapshot of)
/// the ambient virtual budget. If its spend stays within `threshold_us`,
/// the meter is simply replayed onto the ambient budget — bit-identical to
/// an unhedged call. Otherwise the call is a *virtual straggler*: a hedge
/// ladder is raced, starting `threshold_us` later on the virtual clock
/// (so its budget is the remainder) and with attempt indices offset by
/// [`HEDGE_ATTEMPT_BASE`]. The race is decided purely in virtual time.
///
/// Outcome selection is byte-stable: the primary's bytes stand unless the
/// hedge **alone** succeeded (the availability rescue). Both ladders run
/// the same pure per-shard computation, so when both succeed the hedge can
/// only win *time*, never change bytes; when both fail the primary's error
/// text is reported so hedging never perturbs error digests. The ambient
/// budget is charged the winner's completion time — min(primary,
/// threshold + hedge) — which is how hedging compresses the virtual tail.
///
/// With hedging disarmed (`threshold_us == 0`) or no ambient budget
/// installed (no virtual clock to race against), this is exactly
/// [`retry_call`]. Never used for writes: a hedge re-executes the call.
///
/// `base_attempt` shifts both ladders' ambient attempt indices — the hook
/// replica failover uses ([`replica_call`], band
/// [`FAILOVER_ATTEMPT_BASE`]) so each failover hop looks like a fresh
/// request to the fault schedule while the hedge ladder stays offset by
/// [`HEDGE_ATTEMPT_BASE`] *within* the hop's band.
fn hedged_call<T>(
    shard: usize,
    engine: &dyn MicroblogEngine,
    policy: &RetryPolicy,
    counters: &FaultCounters,
    threshold_us: u64,
    base_attempt: u32,
    op: impl Fn(&dyn MicroblogEngine) -> Result<T>,
) -> Result<T> {
    let snapshot = fault::remaining_budget_us();
    if threshold_us == 0 || snapshot.is_none() {
        return retry_call_from(shard, engine, policy, counters, base_attempt, &op);
    }
    // Primary ladder under a detached meter holding the same remaining
    // budget, so a genuine overrun still surfaces as a Timeout inside.
    let (primary, p_spend) = fault::with_worker_budget(snapshot, || {
        retry_call_from(shard, engine, policy, counters, base_attempt, &op)
    });
    if p_spend.spent_us <= threshold_us {
        fault::absorb_worker_spend(&p_spend);
        fault::charge(p_spend.spent_us)?;
        return primary;
    }
    counters.note_hedge();
    let hedge_budget = snapshot.map(|s| s.saturating_sub(threshold_us));
    let (hedge, h_spend) = fault::with_worker_budget(hedge_budget, || {
        retry_call_from(shard, engine, policy, counters, base_attempt + HEDGE_ATTEMPT_BASE, &op)
    });
    let p_total = p_spend.spent_us;
    let h_total = threshold_us.saturating_add(h_spend.spent_us);
    // Same outcome kind on both ladders ⇒ the hedge can only shave time
    // (the primary's bytes are what we report either way).
    let hedge_first = h_total < p_total;
    let (winner, spend, total_us) = match (primary, hedge) {
        (Ok(p), Err(_)) => (Ok(p), p_spend, p_total),
        (Ok(p), Ok(_)) => {
            if hedge_first {
                counters.note_hedge_win();
            }
            (Ok(p), p_spend, if hedge_first { h_total } else { p_total })
        }
        (Err(pe), Err(_)) => {
            if hedge_first {
                counters.note_hedge_win();
            }
            (Err(pe), p_spend, if hedge_first { h_total } else { p_total })
        }
        (Err(_), Ok(h)) => {
            // The rescue: only the hedge succeeded.
            counters.note_hedge_win();
            (Ok(h), h_spend, h_total)
        }
    };
    fault::absorb_worker_spend(&spend);
    fault::charge(total_us)?;
    winner
}

// ---- replication (DESIGN.md §4i) ------------------------------------------

/// Attempt-index offset between replica failover hops. Each hop `h` of the
/// failover ladder runs its retry (and nested hedge) ladders on band
/// `h * FAILOVER_ATTEMPT_BASE`, so the fault schedule treats every hop as
/// a fresh request on a different machine: a transient burst on one
/// replica never implies a burst on the next, while permanent faults
/// (which ignore the attempt index) are never masked by hopping. The band
/// is far above [`HEDGE_ATTEMPT_BASE`] plus any plausible retry count, so
/// retry, hedge and failover offsets can never collide.
const FAILOVER_ATTEMPT_BASE: u32 = 256;

/// The replicas of one shard slot: R engines ingested from the **same**
/// partition dataset, plus a per-replica *torn* flag. A replica is torn
/// when it missed a write the rest of the group accepted; torn replicas
/// are permanently excluded from reads and writes (they would serve stale
/// answers), surfacing as synthetic `Unavailable` legs the failover
/// ladder walks past.
struct ReplicaGroup {
    replicas: Vec<Arc<dyn MicroblogEngine>>,
    torn: Vec<AtomicBool>,
}

impl ReplicaGroup {
    fn new(replicas: Vec<Box<dyn MicroblogEngine>>) -> Self {
        assert!(!replicas.is_empty(), "a replica group needs at least one replica");
        let torn = replicas.iter().map(|_| AtomicBool::new(false)).collect();
        ReplicaGroup { replicas: replicas.into_iter().map(Arc::from).collect(), torn }
    }

    fn len(&self) -> usize {
        self.replicas.len()
    }

    fn engine(&self, replica: usize) -> &dyn MicroblogEngine {
        self.replicas[replica].as_ref()
    }

    fn is_torn(&self, replica: usize) -> bool {
        self.torn[replica].load(Ordering::Relaxed)
    }

    fn mark_torn(&self, replica: usize) {
        self.torn[replica].store(true, Ordering::Relaxed);
    }

    fn torn_count(&self) -> usize {
        (0..self.len()).filter(|&r| self.is_torn(r)).count()
    }
}

/// The deterministic primary replica serving a read routed by `route` at
/// `shard`: a pure hash of `(route, shard)` modulo the group size. The
/// same query always lands on the same replica (cache locality, and the
/// serving counters stay thread-count-invariant), while distinct queries
/// spread uniformly across the group — round-robin in expectation, which
/// is what scales read qps with R. No RNG, no rotating counter: every
/// routing decision is replayable.
pub fn replica_of(route: u64, shard: usize, replicas: usize) -> usize {
    debug_assert!(replicas > 0, "replica count must be positive");
    if replicas <= 1 {
        return 0;
    }
    (fault::key2(route, shard as u64) % replicas as u64) as usize
}

/// One read shard call with **deterministic replica failover**: try the
/// primary replica first (its retry + hedge ladders on attempt band 0),
/// then walk the group in ring order — hop `h` tries replica
/// `(primary + h) % R` on attempt band `h * FAILOVER_ATTEMPT_BASE` — until
/// a replica answers. Torn replicas are skipped as synthetic
/// `Unavailable` legs without being called. Only retryable errors
/// (`Unavailable`: dead or exhausted replicas) fail over; semantic errors
/// and `Timeout` (the budget is spent — another replica cannot mint more)
/// propagate immediately. When every replica fails, the **primary's**
/// error text is reported, mirroring the hedging convention, so R never
/// perturbs error digests. At R = 1 this is exactly [`hedged_call`].
fn replica_call<T>(
    shard: usize,
    group: &ReplicaGroup,
    primary: usize,
    policy: &RetryPolicy,
    counters: &FaultCounters,
    threshold_us: u64,
    op: impl Fn(&dyn MicroblogEngine) -> Result<T>,
) -> Result<T> {
    let r = group.len();
    let mut primary_err: Option<CoreError> = None;
    for hop in 0..r as u32 {
        let replica = (primary + hop as usize) % r;
        if hop > 0 {
            counters.note_failover();
        }
        let result = if group.is_torn(replica) {
            Err(CoreError::Unavailable(format!(
                "shard {shard} replica {replica} torn (missed a group write)"
            )))
        } else {
            hedged_call(
                shard,
                group.engine(replica),
                policy,
                counters,
                threshold_us,
                hop * FAILOVER_ATTEMPT_BASE,
                &op,
            )
        };
        match result {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() => {
                if primary_err.is_none() {
                    primary_err = Some(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(primary_err.expect("non-empty replica group recorded an error"))
}

/// N inner engines behind one [`MicroblogEngine`] facade.
///
/// Point lookups route to the owner shard; scatter/gather queries broadcast
/// and merge. Every merge sorts (or ranks with the global tie-break), so
/// answers are deterministic and byte-identical to an unsharded engine
/// regardless of shard count — see the per-method comments for why each
/// merge is exact.
///
/// Every shard call goes through a fault boundary (`crate::fault`):
/// panicking shards are caught and surfaced as typed
/// [`CoreError::Unavailable`] errors (never a process abort), retryable
/// errors are retried under the engine's [`RetryPolicy`] with deterministic
/// backoff charged to the ambient virtual-deadline budget, and — in
/// [`DegradationMode::Partial`] only — scatter queries skip shards that
/// stay down, tagging the request's [`fault::Coverage`]. The default
/// (`Strict` mode, no deadline) never changes an answer, which is why the
/// cross-engine equivalence matrix holds for default-configured sharded
/// engines.
pub struct ShardedEngine {
    shards: Vec<Arc<ReplicaGroup>>,
    /// Replicas per shard slot (uniform across the engine; 1 = unreplicated).
    replicas: usize,
    name: &'static str,
    policy: RetryPolicy,
    mode: DegradationMode,
    scatter_mode: AtomicU8,
    /// Virtual-µs straggler threshold arming [`hedged_call`] for scatter
    /// shard calls; 0 = hedging off (the default).
    hedge_threshold_us: AtomicU64,
    /// Whether Q3/Q4/Q5 merges use the bounded `*_topn_kernel` pushdown
    /// paths (default) or gather full per-shard count maps.
    pushdown: AtomicBool,
    /// Whether Q6.1 runs the bidirectional frontier exchange (default) or
    /// the one-sided BFS oracle; answers are identical either way.
    bidir_bfs: AtomicBool,
    counters: Arc<FaultCounters>,
    pool: WorkerPool,
}

impl ShardedEngine {
    /// Wraps `shards` inner engines (typically all of the same backend,
    /// each ingested from one [`partition_dataset`] part), with the default
    /// [`RetryPolicy`], [`DegradationMode::Strict`] and
    /// [`ScatterMode::Parallel`]. Spawns the persistent scatter worker
    /// pool (spare cores, capped at the shard count; joined on drop).
    ///
    /// # Panics
    /// Panics when `shards` is empty.
    pub fn new(shards: Vec<Box<dyn MicroblogEngine>>) -> Self {
        Self::new_replicated(shards.into_iter().map(|e| vec![e]).collect())
    }

    /// Wraps `groups[shard]` = the R replicas of shard `shard` — each a
    /// full engine ingested from the **same** partition dataset
    /// (DESIGN.md §4i). Reads route to a deterministic primary replica and
    /// fail over along the group ring on `Unavailable`; writes apply to
    /// every live replica of the owning shard. With R = 1 this is exactly
    /// [`ShardedEngine::new`] — same name, same routing, same digests.
    ///
    /// # Panics
    /// Panics when `groups` is empty, any group is empty, or the groups
    /// are not all the same size (the replica count is engine-uniform).
    pub fn new_replicated(groups: Vec<Vec<Box<dyn MicroblogEngine>>>) -> Self {
        assert!(!groups.is_empty(), "ShardedEngine needs at least one shard");
        let replicas = groups[0].len();
        assert!(replicas > 0, "every shard needs at least one replica");
        assert!(
            groups.iter().all(|g| g.len() == replicas),
            "all shards must have the same replica count"
        );
        // The trait hands out `&'static str`; one leaked label per engine
        // construction is bounded by the number of engines built.
        let backend = groups[0][0].name();
        let name: &'static str = Box::leak(
            if replicas > 1 {
                format!("sharded[{}/{}x{}]", backend, groups.len(), replicas)
            } else {
                format!("sharded[{}/{}]", backend, groups.len())
            }
            .into_boxed_str(),
        );
        let shards: Vec<Arc<ReplicaGroup>> =
            groups.into_iter().map(|g| Arc::new(ReplicaGroup::new(g))).collect();
        let pool = WorkerPool::new(shards.len());
        ShardedEngine {
            shards,
            replicas,
            name,
            policy: RetryPolicy::default(),
            mode: DegradationMode::Strict,
            scatter_mode: AtomicU8::new(ScatterMode::default().to_u8()),
            hedge_threshold_us: AtomicU64::new(0),
            pushdown: AtomicBool::new(true),
            bidir_bfs: AtomicBool::new(true),
            counters: Arc::new(FaultCounters::default()),
            pool,
        }
    }

    /// Builder: replaces the retry policy (attempts, backoff, deadline).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder: sets the degradation mode for scatter queries.
    pub fn with_degradation(mut self, mode: DegradationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: sets the scatter execution mode.
    pub fn with_scatter_mode(self, mode: ScatterMode) -> Self {
        self.scatter_mode.store(mode.to_u8(), Ordering::Relaxed);
        self
    }

    /// Builder: arms deterministic hedged requests for scatter shard calls
    /// — a call whose virtual spend exceeds `threshold_us` races a
    /// re-issued copy and the winner's time is charged (DESIGN.md §4f).
    /// `0` disarms. Inert unless a virtual deadline budget is installed.
    pub fn with_hedging(self, threshold_us: u64) -> Self {
        self.hedge_threshold_us.store(threshold_us, Ordering::Relaxed);
        self
    }

    /// Builder: enables/disables the Q3/Q4/Q5 top-n pushdown merge paths
    /// (on by default; answers are identical either way).
    pub fn with_pushdown(self, on: bool) -> Self {
        self.pushdown.store(on, Ordering::Relaxed);
        self
    }

    /// The armed hedge threshold in virtual µs (0 = hedging off).
    pub fn hedge_threshold(&self) -> u64 {
        self.hedge_threshold_us.load(Ordering::Relaxed)
    }

    /// Re-arms (`Some`) or disarms (`None`) scatter hedging at runtime.
    pub fn set_hedging(&self, threshold_us: Option<u64>) {
        self.hedge_threshold_us.store(threshold_us.unwrap_or(0), Ordering::Relaxed);
    }

    /// Builder: enables/disables the Q6.1 bidirectional frontier exchange
    /// (on by default; the one-sided BFS gives identical answers).
    pub fn with_bidirectional_bfs(self, on: bool) -> Self {
        self.bidir_bfs.store(on, Ordering::Relaxed);
        self
    }

    /// Whether Q3/Q4/Q5 merges run over the bounded pushdown kernels.
    pub fn pushdown_enabled(&self) -> bool {
        self.pushdown.load(Ordering::Relaxed)
    }

    /// Flips the top-n pushdown path at runtime — answers never change,
    /// only how much each merge round-trips per shard.
    pub fn set_pushdown(&self, on: bool) {
        self.pushdown.store(on, Ordering::Relaxed);
    }

    /// Whether Q6.1 expands two frontiers that meet in the middle.
    pub fn bidirectional_bfs_enabled(&self) -> bool {
        self.bidir_bfs.load(Ordering::Relaxed)
    }

    /// Flips the Q6.1 BFS strategy at runtime — answers never change, only
    /// how many broadcast rounds (and how large a frontier each ships) a
    /// path query costs.
    pub fn set_bidirectional_bfs(&self, on: bool) {
        self.bidir_bfs.store(on, Ordering::Relaxed);
    }

    /// The active retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The active degradation mode.
    pub fn degradation(&self) -> DegradationMode {
        self.mode
    }

    /// Number of inner shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Permanently marks `replica` of `shard` as torn — the operational
    /// kill switch. A torn replica is skipped by reads (the failover
    /// ladder walks past it) and writes (the rest of the group keeps
    /// accepting), exactly as if it had missed a group write.
    ///
    /// # Panics
    /// Panics when `shard` or `replica` is out of range.
    pub fn kill_replica(&self, shard: usize, replica: usize) {
        assert!(replica < self.replicas, "replica index out of range");
        self.shards[shard].mark_torn(replica);
    }

    /// Total torn replicas across all shard groups.
    pub fn torn_replicas(&self) -> usize {
        self.shards.iter().map(|g| g.torn_count()).sum()
    }

    fn load_scatter_mode(&self) -> ScatterMode {
        ScatterMode::from_u8(self.scatter_mode.load(Ordering::Relaxed))
    }

    /// Buckets uids by owning shard (index = shard index).
    fn route(&self, uids: &[i64]) -> Vec<Vec<i64>> {
        let mut buckets = vec![Vec::new(); self.shards.len()];
        for &u in uids {
            buckets[shard_of(u, self.shards.len())].push(u);
        }
        buckets
    }

    /// Installs the policy's per-query deadline budget unless the serving
    /// layer already installed a per-request one — the entry point every
    /// public query method runs under.
    fn q<R>(&self, f: impl FnOnce() -> Result<R>) -> Result<R> {
        fault::with_fallback_budget(self.policy.deadline_us, f)
    }

    /// The primary replica serving a read routed by `route` at `shard` —
    /// [`replica_of`], plus the replica-read counter when the primary is a
    /// non-zero replica. Computed on the caller thread (never inside a
    /// scatter worker) so the counter tape is thread-count-invariant.
    fn read_primary(&self, shard: usize, route: u64) -> usize {
        let primary = replica_of(route, shard, self.replicas);
        if primary != 0 {
            self.counters.note_replica_read();
        }
        primary
    }

    /// One read shard call on the caller thread: deterministic primary,
    /// failover along the replica ring, no hedging (point reads are cheap
    /// enough that a replica hop *is* the hedge).
    fn read_at<T>(
        &self,
        shard: usize,
        route: u64,
        op: impl Fn(&dyn MicroblogEngine) -> Result<T>,
    ) -> Result<T> {
        let primary = self.read_primary(shard, route);
        replica_call(shard, &self.shards[shard], primary, &self.policy, &self.counters, 0, op)
    }

    /// Point lookup on the owner shard — never degrades: a single owner
    /// group is not optional, so exhausted failover propagates in both
    /// modes.
    fn point<T>(&self, uid: i64, op: impl Fn(&dyn MicroblogEngine) -> Result<T>) -> Result<T> {
        self.read_at(shard_of(uid, self.shards.len()), fault::key_i64(uid), op)
    }

    /// One write applied to **every live replica** of `shard` (DESIGN.md
    /// §4i). Writes never degrade and never hedge or fail over — each
    /// replica must apply the write itself. A replica that still fails
    /// after retries while a groupmate succeeded has *missed* the write:
    /// it is marked torn and excluded from all future reads and writes —
    /// failing fast beats serving stale. When every live replica fails,
    /// nothing mutated anywhere (the chaos gate fires before the inner
    /// engine mutates), so the group stays consistent and the first error
    /// propagates untorn. When every replica is already torn the shard is
    /// lost and the write fails.
    fn write_at(&self, shard: usize, op: impl Fn(&dyn MicroblogEngine) -> Result<()>) -> Result<()> {
        let group = &self.shards[shard];
        let mut live = 0usize;
        let mut applied = false;
        let mut first_err: Option<CoreError> = None;
        let mut missed: Vec<usize> = Vec::new();
        for r in 0..group.len() {
            if group.is_torn(r) {
                continue;
            }
            live += 1;
            match retry_call(shard, group.engine(r), &self.policy, &self.counters, |e| op(e)) {
                Ok(()) => applied = true,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    missed.push(r);
                }
            }
        }
        if live == 0 {
            return Err(CoreError::Unavailable(format!(
                "shard {shard}: every replica is torn"
            )));
        }
        match (applied, first_err) {
            (_, None) => Ok(()),
            (true, Some(_)) => {
                // The write is in: the group answers it. Replicas that
                // missed it are torn from here on.
                for r in missed {
                    group.mark_torn(r);
                }
                Ok(())
            }
            (false, Some(e)) => Err(e),
        }
    }

    /// The single shard an event touches, when every entity it references
    /// routes there: its owner for `NewUser`, the shared shard for a
    /// same-shard `NewFollow`, the poster's home for a `NewTweet` whose
    /// mentions all live at home (hashtags are replicated everywhere).
    /// `None` marks a cross-shard event — a batching barrier, because it
    /// writes to (or validates against) more than one shard and may depend
    /// on pending events of any of them.
    fn local_shard(&self, event: &micrograph_datagen::UpdateEvent) -> Option<usize> {
        use micrograph_datagen::UpdateEvent;
        let n = self.shards.len();
        match event {
            UpdateEvent::NewUser { uid, .. } => Some(shard_of(*uid as i64, n)),
            UpdateEvent::NewFollow { follower, followee } => {
                let (a, b) = (shard_of(*follower as i64, n), shard_of(*followee as i64, n));
                (a == b).then_some(a)
            }
            UpdateEvent::NewTweet { uid, mentions, .. } => {
                let home = shard_of(*uid as i64, n);
                mentions.iter().all(|m| shard_of(*m as i64, n) == home).then_some(home)
            }
        }
    }

    /// Fans the accumulated per-shard event runs out, one batched write
    /// per shard per replica, in shard order. A shard-local batch carries
    /// its own validation (the inner adapters produce the same `NotFound`
    /// texts in the same order the looped path would), so no scatter of
    /// point reads precedes it.
    fn flush_event_runs(
        &self,
        pending: &mut [Vec<micrograph_datagen::UpdateEvent>],
    ) -> Result<()> {
        for (s, run) in pending.iter_mut().enumerate() {
            if run.is_empty() {
                continue;
            }
            let batch = std::mem::take(run);
            self.write_at(s, |e| e.apply_event_batch(&batch))?;
        }
        Ok(())
    }

    /// Shard indices of non-empty routing buckets — the selection for a
    /// routed (rather than broadcast) scatter.
    fn non_empty(buckets: &[Vec<i64>]) -> Vec<usize> {
        buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, _)| i)
            .collect()
    }

    /// Runs `op` on every shard, gathering partials in shard order.
    /// `route` picks each shard's primary replica (ignored at R = 1).
    fn broadcast<T: Send + 'static>(
        &self,
        route: u64,
        op: impl Fn(usize, &dyn MicroblogEngine) -> Result<T> + Send + Sync + 'static,
    ) -> Result<Vec<T>> {
        self.scatter(route, (0..self.shards.len()).collect(), op)
    }

    /// Scatter fan-out: runs `op` on every shard in `selected` (ascending
    /// shard indices), collecting the partials **in shard order**. Strict
    /// mode propagates the first failure in shard order; Partial mode skips
    /// shards that stay `Unavailable` after retries (recording lost
    /// coverage) and **sheds** shard calls that exhaust the virtual budget
    /// (a per-leg `Timeout` becomes lost coverage plus a shed count,
    /// DESIGN.md §4f) — under overload the request degrades instead of
    /// queueing. In Strict mode a `Timeout` still propagates.
    ///
    /// Execution follows the engine's [`ScatterMode`]; single-shard
    /// selections always run inline (nothing to overlap) and two-shard
    /// fan-outs run inline on the caller thread with pooled-path
    /// accounting ([`Self::scatter_inline`] — the handoff costs more than
    /// the overlap buys at that width). Because per-shard fault decisions
    /// are pure functions of `(plan, shard, method, args, attempt)` and
    /// the gather order is fixed, all paths produce the same partials, the
    /// same coverage tape and the same first error.
    fn scatter<T: Send + 'static>(
        &self,
        route: u64,
        selected: Vec<usize>,
        op: impl Fn(usize, &dyn MicroblogEngine) -> Result<T> + Send + Sync + 'static,
    ) -> Result<Vec<T>> {
        fault::note_fanout(selected.len() as u32);
        // Primaries resolve on the caller thread, before any dispatch, so
        // the replica-read counter tape is identical across scatter modes
        // and thread counts. Each selected shard serves this request from
        // the primary `replica_of(route, shard, R)` picks — distinct
        // requests spread across the group, which is the read scale-out.
        let primaries: Vec<usize> =
            selected.iter().map(|&i| self.read_primary(i, route)).collect();
        match self.load_scatter_mode() {
            ScatterMode::Parallel if selected.len() > 2 => {
                self.scatter_parallel(selected, primaries, op)
            }
            ScatterMode::Parallel if selected.len() > 1 => {
                self.scatter_inline(&selected, &primaries, op)
            }
            _ => self.scatter_sequential(&selected, &primaries, op),
        }
    }

    /// Shard-order replay of one gathered leg: success collects the
    /// partial; Partial mode absorbs `Unavailable` shards and sheds
    /// `Timeout` legs (recording both as lost coverage); everything else
    /// propagates. Shared by all three scatter paths so their answer
    /// semantics cannot drift.
    fn gather_leg<T>(&self, result: Result<T>, parts: &mut Vec<T>) -> Result<()> {
        match result {
            Ok(v) => {
                fault::note_shard(true);
                parts.push(v);
                Ok(())
            }
            Err(CoreError::Unavailable(_)) if self.mode == DegradationMode::Partial => {
                fault::note_shard(false);
                Ok(())
            }
            Err(CoreError::Timeout(_)) if self.mode == DegradationMode::Partial => {
                self.counters.note_shed();
                fault::note_shard(false);
                Ok(())
            }
            Err(e) => {
                fault::note_shard(false);
                Err(e)
            }
        }
    }

    fn scatter_sequential<T>(
        &self,
        selected: &[usize],
        primaries: &[usize],
        op: impl Fn(usize, &dyn MicroblogEngine) -> Result<T>,
    ) -> Result<Vec<T>> {
        let threshold = self.hedge_threshold();
        let mut parts = Vec::with_capacity(selected.len());
        for (slot, &i) in selected.iter().enumerate() {
            let result = replica_call(
                i,
                &self.shards[i],
                primaries[slot],
                &self.policy,
                &self.counters,
                threshold,
                |e| op(i, e),
            );
            self.gather_leg(result, &mut parts)?;
        }
        Ok(parts)
    }

    /// The small-fan-out fast path: both legs run on the caller thread,
    /// but under the **pooled path's accounting** — per-leg budget
    /// snapshot, max-spend charge, in-shard-order absorb — so switching
    /// between this and [`Self::scatter_parallel`] never moves a digest or
    /// a virtual-time measurement. What it removes is the real-world cost:
    /// no task boxing, no channel handoff, no worker wakeup — which at
    /// fan-out 2 used to make Parallel *slower* than Sequential.
    fn scatter_inline<T>(
        &self,
        selected: &[usize],
        primaries: &[usize],
        op: impl Fn(usize, &dyn MicroblogEngine) -> Result<T>,
    ) -> Result<Vec<T>> {
        let snapshot = fault::remaining_budget_us();
        let threshold = self.hedge_threshold();
        let mut slots = Vec::with_capacity(selected.len());
        for (slot, &i) in selected.iter().enumerate() {
            slots.push(fault::with_worker_budget(snapshot, || {
                replica_call(
                    i,
                    &self.shards[i],
                    primaries[slot],
                    &self.policy,
                    &self.counters,
                    threshold,
                    |e| op(i, e),
                )
            }));
        }
        let max_spent = slots.iter().map(|(_, spend)| spend.spent_us).max().unwrap_or(0);
        fault::charge(max_spent)?;
        let mut parts = Vec::with_capacity(selected.len());
        for (result, spend) in slots {
            fault::absorb_worker_spend(&spend);
            self.gather_leg(result, &mut parts)?;
        }
        Ok(parts)
    }

    /// The parallel path: publish one claim-guarded task per selected
    /// shard to the shared pool, each running the full retry loop under a
    /// **snapshot** of the caller's remaining budget, then *steal* — the
    /// caller claims every still-unclaimed slot in shard order and runs it
    /// inline, so when the pool is busy (or wakeups are slow) the fan-out
    /// degrades gracefully to sequential cost instead of stalling behind a
    /// handoff. Finally gather the worker-claimed slots, charge the max
    /// spend once, and replay outcomes in shard order. Which thread ran a
    /// slot is the only race — every decision that shapes the answer
    /// (fault schedule, retry counts, budget snapshot, merge order,
    /// first-error choice) is interleaving-independent.
    fn scatter_parallel<T: Send + 'static>(
        &self,
        selected: Vec<usize>,
        primaries: Vec<usize>,
        op: impl Fn(usize, &dyn MicroblogEngine) -> Result<T> + Send + Sync + 'static,
    ) -> Result<Vec<T>> {
        let snapshot = fault::remaining_budget_us();
        // The shard call itself — identical wherever it runs.
        let exec = {
            let op = Arc::new(op);
            let policy = self.policy;
            let counters = Arc::clone(&self.counters);
            let threshold = self.hedge_threshold();
            Arc::new(move |i: usize, primary: usize, group: &ReplicaGroup| {
                fault::with_worker_budget(snapshot, || {
                    replica_call(i, group, primary, &policy, &counters, threshold, |e| op(i, e))
                })
            })
        };
        let claims: Arc<Vec<AtomicBool>> =
            Arc::new(selected.iter().map(|_| AtomicBool::new(false)).collect());
        let (tx, rx) = channel::unbounded::<(usize, Result<T>, fault::WorkerSpend)>();
        for (slot, &i) in selected.iter().enumerate() {
            let exec = Arc::clone(&exec);
            let claims = Arc::clone(&claims);
            let group = Arc::clone(&self.shards[i]);
            let primary = primaries[slot];
            let tx_task = tx.clone();
            let task: Task = Box::new(move || {
                if claims[slot].swap(true, Ordering::AcqRel) {
                    return; // the caller already stole this slot
                }
                let (result, spend) = exec(i, primary, group.as_ref());
                let _ = tx_task.send((slot, result, spend));
            });
            // A failed submit (pool gone) is fine: the slot stays
            // unclaimed and the steal pass below runs it inline.
            let _ = self.pool.submit(task);
        }
        drop(tx);
        let mut slots: Vec<Option<(Result<T>, fault::WorkerSpend)>> =
            (0..selected.len()).map(|_| None).collect();
        // Steal pass: run whatever no worker has picked up yet.
        for (slot, &i) in selected.iter().enumerate() {
            if !claims[slot].swap(true, Ordering::AcqRel) {
                slots[slot] = Some(exec(i, primaries[slot], self.shards[i].as_ref()));
            }
        }
        // Gather the worker-claimed slots. Every pending task holds a
        // sender clone, so recv() can only disconnect once all tasks have
        // run or been dropped — a lost worker surfaces as a `None` slot.
        while slots.iter().any(Option::is_none) {
            match rx.recv() {
                Ok((slot, result, spend)) => slots[slot] = Some((result, spend)),
                Err(_) => break,
            }
        }
        // Fan-out virtual latency = the slowest shard call, not the sum.
        // Cannot overdraw: each worker's spend is capped by the snapshot,
        // which is exactly what the caller still has.
        let max_spent = slots
            .iter()
            .flatten()
            .map(|(_, spend)| spend.spent_us)
            .max()
            .unwrap_or(0);
        fault::charge(max_spent)?;
        let mut parts = Vec::with_capacity(selected.len());
        for slot in &mut slots {
            let (result, spend) = slot.take().unwrap_or_else(|| {
                (Err(CoreError::Unavailable("shard worker lost".into())), Default::default())
            });
            fault::absorb_worker_spend(&spend);
            self.gather_leg(result, &mut parts)?;
        }
        Ok(parts)
    }

    // ---- Q6.1 distributed BFS (DESIGN.md §4h) ------------------------------

    /// One BFS round: broadcast the frontier as a single batched
    /// `follow_frontier_kernel` call per shard and union the sorted
    /// distinct partials (sort + dedup on a flat Vec; no tree set).
    fn bfs_round(&self, route: u64, frontier: &Arc<Vec<i64>>) -> Result<Vec<i64>> {
        let shared = Arc::clone(frontier);
        let parts = self.broadcast(route, move |_, s| s.follow_frontier_kernel(&shared))?;
        let mut next: Vec<i64> = parts.into_iter().flatten().collect();
        next.sort_unstable();
        next.dedup();
        Ok(next)
    }

    /// The one-sided BFS oracle: expand from `a` one hop per round until
    /// `b` shows up. Kept selectable (`set_bidirectional_bfs(false)`) so
    /// the frontier exchange below has an in-tree semantic baseline.
    fn one_sided_path_len(&self, route: u64, a: i64, b: i64, max_hops: u32) -> Result<Option<u32>> {
        let mut visited: Vec<i64> = vec![a];
        let mut frontier = Arc::new(vec![a]);
        for depth in 1..=max_hops {
            let next = self.bfs_round(route, &frontier)?;
            if next.binary_search(&b).is_ok() {
                return Ok(Some(depth));
            }
            // Reuse the frontier allocation across rounds when the workers
            // have released their handles (opportunistic — a straggler
            // drop just costs one fresh Vec).
            let mut buf = Arc::try_unwrap(frontier).unwrap_or_default();
            buf.clear();
            buf.extend(next.into_iter().filter(|u| visited.binary_search(u).is_err()));
            if buf.is_empty() {
                return Ok(None);
            }
            visited.extend_from_slice(&buf);
            visited.sort_unstable();
            frontier = Arc::new(buf);
        }
        Ok(None)
    }

    /// Bidirectional frontier exchange: grow a frontier from each endpoint
    /// and expand the SMALLER one each round (ties expand the a-side, so
    /// the schedule is deterministic), meeting in the middle after
    /// ~half the rounds over ~sqrt-sized frontiers.
    ///
    /// Exactness with plain visited *sets* (no per-node depth maps): at a
    /// round's start no detection has fired, so d = dist(a,b) > da + db.
    /// After expanding (say) the a-side to depth da+1, the fresh frontier
    /// is exactly the nodes at a-distance da+1, and the node sitting at
    /// position da+1 on a shortest path has b-distance d-(da+1) — inside
    /// b's visited set iff d ≤ da+1+db. So the first intersection fires
    /// exactly when the depth sum first reaches d, and `da + db` at that
    /// moment IS the answer; no shorter path can have been missed.
    fn bidirectional_path_len(
        &self,
        route: u64,
        a: i64,
        b: i64,
        max_hops: u32,
    ) -> Result<Option<u32>> {
        let mut visited_a: Vec<i64> = vec![a];
        let mut visited_b: Vec<i64> = vec![b];
        let mut frontier_a = Arc::new(vec![a]);
        let mut frontier_b = Arc::new(vec![b]);
        let mut depth_sum = 0u32;
        while depth_sum < max_hops {
            let expand_a = frontier_a.len() <= frontier_b.len();
            let (frontier, own_visited, other_visited) = if expand_a {
                (&mut frontier_a, &mut visited_a, &visited_b)
            } else {
                (&mut frontier_b, &mut visited_b, &visited_a)
            };
            let next = self.bfs_round(route, frontier)?;
            depth_sum += 1;
            let fresh: Vec<i64> = next
                .into_iter()
                .filter(|u| own_visited.binary_search(u).is_err())
                .collect();
            if fresh.iter().any(|u| other_visited.binary_search(u).is_ok()) {
                return Ok(Some(depth_sum));
            }
            if fresh.is_empty() {
                return Ok(None);
            }
            own_visited.extend_from_slice(&fresh);
            own_visited.sort_unstable();
            *frontier = Arc::new(fresh);
        }
        Ok(None)
    }
}

impl MicroblogEngine for ShardedEngine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn users_with_followers_over(&self, threshold: i64) -> Result<Vec<i64>> {
        // Broadcast; each shard's answer is filtered to the users it OWNS
        // (ghost replicas carry real follower counts and would otherwise
        // duplicate). Owned sets are disjoint, so concat + sort is exact.
        self.q(|| {
            let n = self.shards.len();
            let parts = self.broadcast(fault::key_i64(threshold), move |i, s| {
                Ok(s.users_with_followers_over(threshold)?
                    .into_iter()
                    .filter(|&uid| shard_of(uid, n) == i)
                    .collect::<Vec<_>>())
            })?;
            Ok(concat_sorted(parts))
        })
    }

    fn followees(&self, uid: i64) -> Result<Vec<i64>> {
        // All of A's out-edges live on A's shard; ghosts have none.
        self.q(|| self.point(uid, |s| s.followees(uid)))
    }

    fn followee_tweets(&self, uid: i64) -> Result<Vec<i64>> {
        // Round 1: frontier from the owner. Round 2: route the frontier by
        // ownership — a user's tweets are complete on their own shard.
        self.q(|| {
            let frontier = self.point(uid, |s| s.followees(uid))?;
            let buckets = self.route(&frontier);
            let selected = Self::non_empty(&buckets);
            let parts = self
                .scatter(fault::key_i64(uid), selected, move |i, s| {
                    s.posted_tweets_kernel(&buckets[i])
                })?;
            Ok(concat_sorted(parts))
        })
    }

    fn followee_hashtags(&self, uid: i64) -> Result<Vec<String>> {
        self.q(|| {
            let frontier = self.point(uid, |s| s.followees(uid))?;
            let buckets = self.route(&frontier);
            let selected = Self::non_empty(&buckets);
            let parts = self.scatter(fault::key_i64(uid), selected, move |i, s| {
                s.hashtags_kernel(&buckets[i])
            })?;
            Ok(merge_sorted_distinct(parts))
        })
    }

    fn co_mentioned_users(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        // A co-mention pair can recur on many shards (one per mentioning
        // tweet), so a single-round merge needs the FULL per-shard count
        // maps. The pushdown path (default) runs the TA loop over bounded
        // `co_mention_topn_kernel` partials instead — identical answers
        // (DESIGN.md §4f), but each round ships O(k) rows per shard rather
        // than every co-mentioned user.
        self.q(|| {
            let route = fault::key_i64(uid);
            if self.pushdown_enabled() {
                let top = pushdown_top_n(
                    n,
                    |k| self.broadcast(route, move |_, s| s.co_mention_topn_kernel(uid, k)),
                    |keys| {
                        self.broadcast(route, move |_, s| {
                            s.co_mention_counts_for_kernel(uid, &keys)
                        })
                    },
                )?;
                return Ok(to_ranked(top));
            }
            let parts = self
                .broadcast(route, move |_, s| Ok(counted(s.co_mention_counts_kernel(uid)?)))?;
            Ok(to_ranked(merge_top_n(parts, n)))
        })
    }

    fn co_occurring_hashtags(&self, tag: &str, n: usize) -> Result<Vec<Ranked<String>>> {
        self.q(|| {
            let route = fault::key_str(tag);
            let tag = tag.to_owned();
            if self.pushdown_enabled() {
                let top = pushdown_top_n(
                    n,
                    |k| {
                        let tag = tag.clone();
                        self.broadcast(route, move |_, s| s.co_tag_topn_kernel(&tag, k))
                    },
                    |keys| {
                        let tag = tag.clone();
                        self.broadcast(route, move |_, s| {
                            s.co_tag_counts_for_kernel(&tag, &keys)
                        })
                    },
                )?;
                return Ok(to_ranked(top));
            }
            let parts =
                self.broadcast(route, move |_, s| Ok(counted(s.co_tag_counts_kernel(&tag)?)))?;
            Ok(to_ranked(merge_top_n(parts, n)))
        })
    }

    fn recommend_followees(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        // Frontier from the owner, counting kernels routed by ownership
        // (out-edges are local to their source's shard), then count-sum
        // merge with the not-already-followed filter applied globally. On
        // the pushdown path the filter moves INTO the kernels (as a sorted
        // exclude list applied before truncation), so the TA loop's bounded
        // partials rank exactly the same candidate set.
        self.q(|| {
            let route = fault::key_i64(uid);
            let followed = self.point(uid, |s| s.followees(uid))?;
            if self.pushdown_enabled() {
                let exclude = Arc::new(exclusion_list(uid, &followed));
                let buckets = Arc::new(self.route(&followed));
                let selected = Self::non_empty(&buckets);
                let top = pushdown_top_n(
                    n,
                    |k| {
                        let buckets = Arc::clone(&buckets);
                        let exclude = Arc::clone(&exclude);
                        self.scatter(route, selected.clone(), move |i, s| {
                            s.count_followees_topn_kernel(&buckets[i], &exclude, k)
                        })
                    },
                    |keys| {
                        let buckets = Arc::clone(&buckets);
                        self.scatter(route, selected.clone(), move |i, s| {
                            s.count_followees_counts_for_kernel(&buckets[i], &keys)
                        })
                    },
                )?;
                return Ok(to_ranked(top));
            }
            let buckets = self.route(&followed);
            let selected = Self::non_empty(&buckets);
            let parts = self.scatter(route, selected, move |i, s| {
                s.count_followees_kernel(&buckets[i])
            })?;
            Ok(merge_recommend(uid, &followed, parts, n))
        })
    }

    fn recommend_followers(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        // In-edges are scattered (each lives on its source's shard), so the
        // frontier is BROADCAST; every `follows` edge is stored exactly
        // once globally, so summing per-shard counts is exact. Pushdown
        // mirrors Q4.1: the exclude filter moves into the kernels, the TA
        // loop bounds what each shard ships.
        self.q(|| {
            let route = fault::key_i64(uid);
            let followed = Arc::new(self.point(uid, |s| s.followees(uid))?);
            if followed.is_empty() {
                return Ok(Vec::new());
            }
            if self.pushdown_enabled() {
                let exclude = Arc::new(exclusion_list(uid, &followed));
                let top = pushdown_top_n(
                    n,
                    |k| {
                        let followed = Arc::clone(&followed);
                        let exclude = Arc::clone(&exclude);
                        self.broadcast(route, move |_, s| {
                            s.count_followers_topn_kernel(&followed, &exclude, k)
                        })
                    },
                    |keys| {
                        let followed = Arc::clone(&followed);
                        self.broadcast(route, move |_, s| {
                            s.count_followers_counts_for_kernel(&followed, &keys)
                        })
                    },
                )?;
                return Ok(to_ranked(top));
            }
            let shared = Arc::clone(&followed);
            let parts = self.broadcast(route, move |_, s| s.count_followers_kernel(&shared))?;
            Ok(merge_recommend(uid, &followed, parts, n))
        })
    }

    fn current_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        // A mentioner p's tweets — and the p→A follows edge the filter
        // needs — are all on p's shard, so per-shard candidate sets are
        // DISJOINT and merging the truncated per-shard top-n is exact: ONE
        // round of bounded `influence_topn_kernel` partials suffices, no
        // TA loop or exact-count phase (the bound is ignored).
        self.q(|| {
            let route = fault::key_i64(uid);
            if self.pushdown_enabled() {
                let parts = self
                    .broadcast(route, move |_, s| Ok(s.influence_topn_kernel(uid, true, n)?.top))?;
                return Ok(to_ranked(merge_top_n(parts, n)));
            }
            let parts = self.broadcast(route, move |_, s| {
                Ok(counted(
                    s.current_influence(uid, n)?.into_iter().map(|r| (r.key, r.count)).collect(),
                ))
            })?;
            Ok(to_ranked(merge_top_n(parts, n)))
        })
    }

    fn potential_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>> {
        self.q(|| {
            let route = fault::key_i64(uid);
            if self.pushdown_enabled() {
                let parts = self
                    .broadcast(route, move |_, s| {
                        Ok(s.influence_topn_kernel(uid, false, n)?.top)
                    })?;
                return Ok(to_ranked(merge_top_n(parts, n)));
            }
            let parts = self.broadcast(route, move |_, s| {
                Ok(counted(
                    s.potential_influence(uid, n)?
                        .into_iter()
                        .map(|r| (r.key, r.count))
                        .collect(),
                ))
            })?;
            Ok(to_ranked(merge_top_n(parts, n)))
        })
    }

    fn shortest_path_len(&self, a: i64, b: i64, max_hops: u32) -> Result<Option<u32>> {
        // Distributed BFS: each round broadcasts a frontier to every shard
        // (a user's undirected adjacency is split between their own
        // shard's out-edges and other shards' in-edges) as ONE batched
        // kernel call per shard, and unions the results. Path LENGTH is
        // exploration-order independent, so both round schedules — the
        // one-sided oracle and the bidirectional frontier exchange
        // (default) — reproduce the single-engine answer. Under Partial
        // degradation a skipped shard can only lengthen or lose a path,
        // never invent one.
        self.q(|| {
            // One route per (a, b) request: every BFS round of this query
            // reads the same replica of each shard, so a mid-path replica
            // switch can never mix frontier snapshots.
            let route = fault::key2(fault::key_i64(a), fault::key_i64(b));
            if !self.point(a, |s| s.has_user(a))? || !self.point(b, |s| s.has_user(b))? {
                return Ok(None);
            }
            if a == b {
                return Ok(Some(0));
            }
            if self.bidirectional_bfs_enabled() {
                self.bidirectional_path_len(route, a, b, max_hops)
            } else {
                self.one_sided_path_len(route, a, b, max_hops)
            }
        })
    }

    fn tweets_with_hashtag(&self, tag: &str) -> Result<Vec<i64>> {
        // `tags` edges live only on the owning tweet's shard — disjoint.
        self.q(|| {
            let route = fault::key_str(tag);
            let tag = tag.to_owned();
            let parts = self.broadcast(route, move |_, s| s.tweets_with_hashtag(&tag))?;
            Ok(concat_sorted(parts))
        })
    }

    fn retweet_count(&self, tid: i64) -> Result<u64> {
        // Each retweet edge is stored once (at the retweeting poster's
        // shard); shards without the tweet report 0.
        self.q(|| {
            let parts = self.broadcast(fault::key_i64(tid), move |_, s| s.retweet_count(tid))?;
            Ok(parts.into_iter().sum())
        })
    }

    fn poster_of(&self, tid: i64) -> Result<i64> {
        // Ghost tweet replicas keep the real poster uid, so the first
        // shard that knows the tweet answers correctly. Shards are probed
        // in order; in Partial mode an unavailable shard is skipped (a
        // missed ghost can only turn the answer into NotFound, never a
        // wrong uid).
        self.q(|| {
            let route = fault::key_i64(tid);
            for i in 0..self.shards.len() {
                match self.read_at(i, route, |s| s.poster_of(tid)) {
                    Ok(uid) => {
                        fault::note_shard(true);
                        return Ok(uid);
                    }
                    Err(CoreError::NotFound(_)) => {
                        fault::note_shard(true);
                    }
                    Err(CoreError::Unavailable(_)) if self.mode == DegradationMode::Partial => {
                        fault::note_shard(false);
                    }
                    Err(e) => {
                        fault::note_shard(false);
                        return Err(e);
                    }
                }
            }
            Err(CoreError::NotFound(format!("poster of tweet {tid}")))
        })
    }

    // ---- kernels: delegate so sharded engines compose -----------------------

    fn has_user(&self, uid: i64) -> Result<bool> {
        self.q(|| self.point(uid, |s| s.has_user(uid)))
    }

    fn posted_tweets_kernel(&self, uids: &[i64]) -> Result<Vec<i64>> {
        self.q(|| {
            let route = fault::key_slice(uids);
            let buckets = self.route(uids);
            let selected = Self::non_empty(&buckets);
            let parts = self.scatter(route, selected, move |i, s| {
                s.posted_tweets_kernel(&buckets[i])
            })?;
            Ok(concat_sorted(parts))
        })
    }

    fn hashtags_kernel(&self, uids: &[i64]) -> Result<Vec<String>> {
        self.q(|| {
            let route = fault::key_slice(uids);
            let buckets = self.route(uids);
            let selected = Self::non_empty(&buckets);
            let parts =
                self.scatter(route, selected, move |i, s| s.hashtags_kernel(&buckets[i]))?;
            Ok(merge_sorted_distinct(parts))
        })
    }

    fn count_followees_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>> {
        self.q(|| {
            let route = fault::key_slice(uids);
            let buckets = self.route(uids);
            let selected = Self::non_empty(&buckets);
            let parts = self.scatter(route, selected, move |i, s| {
                s.count_followees_kernel(&buckets[i])
            })?;
            Ok(sum_counts(parts))
        })
    }

    fn count_followers_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>> {
        self.q(|| {
            let route = fault::key_slice(uids);
            let uids = uids.to_vec();
            let parts = self.broadcast(route, move |_, s| s.count_followers_kernel(&uids))?;
            Ok(sum_counts(parts))
        })
    }

    fn co_mention_counts_kernel(&self, uid: i64) -> Result<Vec<(i64, u64)>> {
        self.q(|| {
            let parts =
                self.broadcast(fault::key_i64(uid), move |_, s| s.co_mention_counts_kernel(uid))?;
            Ok(sum_counts(parts))
        })
    }

    fn co_tag_counts_kernel(&self, tag: &str) -> Result<Vec<(String, u64)>> {
        self.q(|| {
            let route = fault::key_str(tag);
            let tag = tag.to_owned();
            let parts = self.broadcast(route, move |_, s| s.co_tag_counts_kernel(&tag))?;
            Ok(sum_counts(parts))
        })
    }

    fn follow_frontier_kernel(&self, uids: &[i64]) -> Result<Vec<i64>> {
        self.q(|| {
            let route = fault::key_slice(uids);
            let uids = uids.to_vec();
            let parts = self.broadcast(route, move |_, s| s.follow_frontier_kernel(&uids))?;
            Ok(merge_sorted_distinct(parts))
        })
    }

    fn ensure_user(&self, uid: i64) -> Result<()> {
        // Writes never degrade — the owner shard is not optional.
        self.q(|| self.write_at(shard_of(uid, self.shards.len()), |s| s.ensure_user(uid)))
    }

    fn bump_followers(&self, uid: i64, delta: i64) -> Result<()> {
        self.q(|| {
            self.write_at(shard_of(uid, self.shards.len()), |s| s.bump_followers(uid, delta))
        })
    }

    fn apply_event(&self, event: &micrograph_datagen::UpdateEvent) -> Result<()> {
        use micrograph_datagen::UpdateEvent;
        // Every step — validation reads and the writes themselves — runs
        // under the retry policy, and none of them degrade: a half-applied
        // update is worse than a failed one, so errors propagate in both
        // modes. The chaos gate fires before the inner engine mutates, so
        // a retried write is never double-applied.
        let n = self.shards.len();
        self.q(|| match event {
            UpdateEvent::NewUser { uid, .. } => {
                self.write_at(shard_of(*uid as i64, n), |s| s.apply_event(event))
            }
            UpdateEvent::NewFollow { follower, followee } => {
                let (fa, fb) = (*follower as i64, *followee as i64);
                // Validate both endpoints against their OWNERS, in the same
                // order the unsharded adapters do. Validation is a read —
                // it routes like one (primary + failover).
                if !self.point(fa, |s| s.has_user(fa))? {
                    return Err(CoreError::NotFound(format!("user {follower}")));
                }
                if !self.point(fb, |s| s.has_user(fb))? {
                    return Err(CoreError::NotFound(format!("user {followee}")));
                }
                let (src, dst) = (shard_of(fa, n), shard_of(fb, n));
                if src == dst {
                    self.write_at(src, |s| s.apply_event(event))
                } else {
                    // Edge + ghost followee at the follower's shard. The
                    // inner engine also bumps the ghost's follower count,
                    // which is invisible globally: only Q1 reads the
                    // property, and its merge filters by ownership.
                    self.write_at(src, |s| s.ensure_user(fb))?;
                    self.write_at(src, |s| s.apply_event(event))?;
                    // The real count lives at the owner.
                    self.write_at(dst, |s| s.bump_followers(fb, 1))
                }
            }
            UpdateEvent::NewTweet { uid, mentions, .. } => {
                let poster = *uid as i64;
                let home = shard_of(poster, n);
                if !self.read_at(home, fault::key_i64(poster), |s| s.has_user(poster))? {
                    return Err(CoreError::NotFound(format!("user {uid}")));
                }
                for m in mentions {
                    let mi = *m as i64;
                    if !self.point(mi, |s| s.has_user(mi))? {
                        return Err(CoreError::NotFound(format!("user {m}")));
                    }
                    if shard_of(mi, n) != home {
                        self.write_at(home, |s| s.ensure_user(mi))?;
                    }
                }
                // Hashtags are replicated, so tag lookups resolve locally.
                self.write_at(home, |s| s.apply_event(event))
            }
        })
    }

    /// Group commit across the partition (DESIGN.md §4j): consecutive
    /// shard-local events accumulate into per-shard runs, flushed as ONE
    /// batched write per shard per replica (writes still never degrade;
    /// torn-replica semantics unchanged — `write_at` is the same door every
    /// single-event write goes through). A cross-shard event is a barrier:
    /// all pending runs flush first (in shard order), then the event takes
    /// the validated multi-step path of [`MicroblogEngine::apply_event`].
    /// On a valid stream this is byte-identical to the looped oracle; on a
    /// mid-batch failure each *shard* keeps its own successful prefix (the
    /// global interleaving across shards is not replayed — the monolithic
    /// adapters, where the oracle-exact prefix contract lives, do that).
    fn apply_event_batch(&self, events: &[micrograph_datagen::UpdateEvent]) -> Result<()> {
        let n = self.shards.len();
        self.q(|| {
            let mut pending: Vec<Vec<micrograph_datagen::UpdateEvent>> = vec![Vec::new(); n];
            for event in events {
                match self.local_shard(event) {
                    Some(s) => pending[s].push(event.clone()),
                    None => {
                        self.flush_event_runs(&mut pending)?;
                        self.apply_event(event)?;
                    }
                }
            }
            self.flush_event_runs(&mut pending)
        })
    }

    fn reset_stats(&self) {
        for g in &self.shards {
            for s in &g.replicas {
                s.reset_stats();
            }
        }
    }

    fn ops_count(&self) -> u64 {
        self.shards.iter().flat_map(|g| g.replicas.iter()).map(|s| s.ops_count()).sum()
    }

    fn drop_caches(&self) -> Result<()> {
        for g in &self.shards {
            for s in &g.replicas {
                s.drop_caches()?;
            }
        }
        Ok(())
    }

    fn fault_stats(&self) -> FaultStats {
        // Own handling counters (retries, caught panics, exhaustion) plus
        // whatever the inner engines injected/handled themselves.
        self.shards
            .iter()
            .flat_map(|g| g.replicas.iter())
            .fold(self.counters.snapshot(), |acc, s| acc.plus(&s.fault_stats()))
    }

    fn scatter_mode(&self) -> Option<ScatterMode> {
        Some(self.load_scatter_mode())
    }

    fn set_scatter_mode(&self, mode: ScatterMode) -> bool {
        self.scatter_mode.store(mode.to_u8(), Ordering::Relaxed);
        true
    }

    fn exec_mode(&self) -> Option<arbor_ql::ExecMode> {
        // All replicas run the same backend; the first one speaks for all.
        self.shards.first().and_then(|g| g.replicas.first()).and_then(|s| s.exec_mode())
    }

    fn set_exec_mode(&self, mode: arbor_ql::ExecMode) -> bool {
        // Flip every replica of every shard (no short-circuit); succeeds
        // only when every one has the toggle (the engine is homogeneous,
        // so this is all-or-nothing in practice).
        let mut ok = true;
        for g in &self.shards {
            for s in &g.replicas {
                ok &= s.set_exec_mode(mode);
            }
        }
        ok
    }

    fn batched_kernels(&self) -> Option<bool> {
        // All replicas run the same backend; the first one speaks for all.
        self.shards.first().and_then(|g| g.replicas.first()).and_then(|s| s.batched_kernels())
    }

    fn set_batched_kernels(&self, on: bool) -> bool {
        // Flip every replica of every shard, like `set_exec_mode`.
        let mut ok = true;
        for g in &self.shards {
            for s in &g.replicas {
                ok &= s.set_batched_kernels(on);
            }
        }
        ok
    }

    fn write_mode(&self) -> Option<crate::engine::WriteMode> {
        // All replicas run the same backend; the first one speaks for all.
        self.shards.first().and_then(|g| g.replicas.first()).and_then(|s| s.write_mode())
    }

    fn set_write_mode(&self, mode: crate::engine::WriteMode) -> bool {
        // Flip every replica of every shard, like `set_exec_mode`.
        let mut ok = true;
        for g in &self.shards {
            for s in &g.replicas {
                ok &= s.set_write_mode(mode);
            }
        }
        ok
    }

    fn replica_count(&self) -> Option<usize> {
        Some(self.replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7] {
            for uid in 0..500i64 {
                let s = shard_of(uid, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(uid, shards), "must be pure");
            }
        }
    }

    #[test]
    fn replica_of_is_deterministic_in_range_and_spreads() {
        for replicas in [1usize, 2, 3, 5] {
            let mut hist = vec![0u32; replicas];
            for route in 0..400u64 {
                for shard in 0..4usize {
                    let r = replica_of(route, shard, replicas);
                    assert!(r < replicas);
                    assert_eq!(r, replica_of(route, shard, replicas), "must be pure");
                    hist[r] += 1;
                }
            }
            // Every replica serves a healthy share of distinct routes —
            // that spread IS the read scale-out.
            if replicas > 1 {
                assert!(
                    hist.iter().all(|&c| c > 0),
                    "every replica must serve some routes: {hist:?}"
                );
                let (min, max) = (hist.iter().min().unwrap(), hist.iter().max().unwrap());
                assert!(max / min.max(&1) < 3, "spread too skewed: {hist:?}");
            }
        }
    }

    #[test]
    fn replica_of_single_replica_is_zero() {
        for route in 0..50u64 {
            for shard in 0..8usize {
                assert_eq!(replica_of(route, shard, 1), 0);
            }
        }
    }

    #[test]
    fn shard_of_single_shard_is_zero() {
        for uid in [0i64, 1, 42, 1_000_000] {
            assert_eq!(shard_of(uid, 1), 0);
        }
    }

    #[test]
    fn shard_of_spreads_users() {
        // The finalizer must not collapse sequential uids onto one shard.
        let mut seen = BTreeSet::new();
        for uid in 1..=64i64 {
            seen.insert(shard_of(uid, 4));
        }
        assert_eq!(seen.len(), 4, "64 sequential uids should hit all 4 shards");
    }

    fn tiny() -> Dataset {
        let users = (1..=8u64)
            .map(|uid| User {
                uid,
                name: format!("u{uid}"),
                followers: uid as u32,
                verified: uid == 1,
            })
            .collect();
        let tweets = (1..=8u64)
            .map(|tid| Tweet { tid, uid: (tid % 8) + 1, text: format!("t{tid}") })
            .collect();
        let mut follows = Vec::new();
        for a in 1..=8u64 {
            for b in 1..=8u64 {
                if a != b && (a + b) % 3 != 0 {
                    follows.push((a, b));
                }
            }
        }
        Dataset {
            users,
            tweets,
            hashtags: vec!["alpha".into(), "beta".into()],
            follows,
            mentions: vec![(1, 3), (1, 3), (2, 5), (3, 7), (4, 1), (5, 2)],
            tags: vec![(1, 0), (1, 1), (2, 0), (3, 1), (5, 0)],
            retweets: vec![(2, 1), (3, 1), (4, 2), (6, 5)],
        }
    }

    #[test]
    fn partition_preserves_every_edge_exactly_once() {
        let d = tiny();
        for shards in [1usize, 2, 4] {
            let parts = partition_dataset(&d, shards);
            assert_eq!(parts.len(), shards);
            let sum = |f: fn(&Dataset) -> usize| parts.iter().map(f).sum::<usize>();
            assert_eq!(sum(|p| p.follows.len()), d.follows.len());
            assert_eq!(sum(|p| p.mentions.len()), d.mentions.len());
            assert_eq!(sum(|p| p.tags.len()), d.tags.len());
            assert_eq!(sum(|p| p.retweets.len()), d.retweets.len());
        }
    }

    #[test]
    fn partition_owned_nodes_partition_exactly() {
        let d = tiny();
        for shards in [1usize, 2, 4] {
            let parts = partition_dataset(&d, shards);
            let owned_users: usize = parts
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    p.users.iter().filter(|u| shard_of(u.uid as i64, shards) == i).count()
                })
                .sum();
            let owned_tweets: usize = parts
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    p.tweets.iter().filter(|t| shard_of(t.uid as i64, shards) == i).count()
                })
                .sum();
            assert_eq!(owned_users, d.users.len());
            assert_eq!(owned_tweets, d.tweets.len());
        }
    }

    #[test]
    fn partition_every_local_edge_endpoint_resolves() {
        let d = tiny();
        for shards in [2usize, 4] {
            for (i, p) in partition_dataset(&d, shards).into_iter().enumerate() {
                let users: BTreeSet<u64> = p.users.iter().map(|u| u.uid).collect();
                let tweets: BTreeSet<u64> = p.tweets.iter().map(|t| t.tid).collect();
                assert_eq!(p.hashtags, d.hashtags, "hashtags replicate everywhere");
                for &(a, b) in &p.follows {
                    assert_eq!(shard_of(a as i64, shards), i, "follows routed by source");
                    assert!(users.contains(&a) && users.contains(&b), "shard {i}: {a}->{b}");
                }
                for &(t, u) in &p.mentions {
                    assert!(tweets.contains(&t) && users.contains(&u));
                }
                for &(t, _) in &p.tags {
                    assert!(tweets.contains(&t));
                }
                for &(rt, orig) in &p.retweets {
                    assert!(tweets.contains(&rt) && tweets.contains(&orig));
                }
            }
        }
    }

    #[test]
    fn partition_ghost_users_carry_real_attributes() {
        let d = tiny();
        let by_uid: HashMap<u64, &User> = d.users.iter().map(|u| (u.uid, u)).collect();
        for p in partition_dataset(&d, 4) {
            for u in &p.users {
                assert_eq!(u, by_uid[&u.uid], "replica must equal the original record");
            }
        }
    }

    #[test]
    fn merge_recommend_filters_subject_and_followed() {
        let parts = vec![vec![(1i64, 3u64), (2, 5), (9, 1)], vec![(2, 2), (4, 4)]];
        let out = merge_recommend(9, &[1], parts, 10);
        // 1 is followed, 9 is the subject; 2 sums to 7 across shards.
        assert_eq!(
            out,
            vec![Ranked::new(2, 7), Ranked::new(4, 4)],
        );
    }

    #[test]
    fn sum_counts_merges_ascending() {
        let parts = vec![vec![(3i64, 1u64), (5, 2)], vec![(1, 4), (3, 2)]];
        assert_eq!(sum_counts(parts), vec![(1, 4), (3, 3), (5, 2)]);
    }

    #[test]
    fn exclusion_list_is_sorted_and_deduped() {
        assert_eq!(exclusion_list(4, &[9, 1, 4, 9]), vec![1, 4, 9]);
        assert_eq!(exclusion_list(7, &[]), vec![7]);
    }

    // ---- the TA pushdown driver, against in-memory "shards" ---------------

    use micrograph_common::topn::topk_partial;

    fn ta_counts(shards: &[Vec<(i64, u64)>], keys: &[i64]) -> Vec<Vec<(i64, u64)>> {
        shards
            .iter()
            .map(|s| {
                s.iter().copied().filter(|(k, _)| keys.binary_search(k).is_ok()).collect()
            })
            .collect()
    }

    #[test]
    fn pushdown_driver_handles_split_key_adversary() {
        // Classic TA adversary: key 5 is mediocre on every shard (count 5)
        // but the global best (10); the per-shard leaders are disjoint
        // count-6 keys that never sum. A naive truncated merge would crown
        // one of them — the bounds force a deeper round instead.
        let shard0: Vec<(i64, u64)> = (10..30).map(|k| (k, 6)).chain([(5, 5)]).collect();
        let shard1: Vec<(i64, u64)> = (40..60).map(|k| (k, 6)).chain([(5, 5)]).collect();
        let shards = vec![shard0, shard1];
        let mut rounds = 0;
        let out = pushdown_top_n(
            1,
            |k| {
                rounds += 1;
                Ok(shards.iter().map(|s| topk_partial(counted(s.clone()), k)).collect())
            },
            |keys| Ok(ta_counts(&shards, &keys)),
        )
        .unwrap();
        assert_eq!(out, vec![Counted { key: 5, count: 10 }]);
        assert!(rounds > 1, "bounds must force a deeper round to surface the split key");
        // The driver agrees with the full-map merge at every n.
        for n in 1..6 {
            let full = merge_top_n(shards.iter().map(|s| counted(s.clone())).collect(), n);
            let ta = pushdown_top_n(
                n,
                |k| Ok(shards.iter().map(|s| topk_partial(counted(s.clone()), k)).collect()),
                |keys| Ok(ta_counts(&shards, &keys)),
            )
            .unwrap();
            assert_eq!(ta, full, "n={n}");
        }
    }

    #[test]
    fn pushdown_driver_stops_once_bounds_cannot_flip_the_order() {
        // A dominant split key: the first exact-count phase proves no
        // unseen key can reach it, so ONE bounded round settles the query
        // even though both shards truncated their long tails.
        let shard0: Vec<(i64, u64)> =
            [(1i64, 100u64)].into_iter().chain((2..21).map(|k| (k, 1))).collect();
        let shard1: Vec<(i64, u64)> =
            [(1i64, 90u64)].into_iter().chain((30..49).map(|k| (k, 1))).collect();
        let shards = vec![shard0, shard1];
        let (mut topn_rounds, mut count_rounds) = (0, 0);
        let out = pushdown_top_n(
            1,
            |k| {
                topn_rounds += 1;
                Ok(shards.iter().map(|s| topk_partial(counted(s.clone()), k)).collect())
            },
            |keys| {
                count_rounds += 1;
                Ok(ta_counts(&shards, &keys))
            },
        )
        .unwrap();
        assert_eq!(out, vec![Counted { key: 1, count: 190 }]);
        assert_eq!(topn_rounds, 1, "one bounded round suffices");
        assert_eq!(count_rounds, 1, "one exact-count phase settles it");
    }

    #[test]
    fn pushdown_driver_zero_n_never_fetches() {
        let fetches = std::cell::Cell::new(0u32);
        let out: Vec<Counted<i64>> = pushdown_top_n(
            0,
            |_| {
                fetches.set(fetches.get() + 1);
                Ok(Vec::new())
            },
            |_| {
                fetches.set(fetches.get() + 1);
                Ok(Vec::new())
            },
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(fetches.get(), 0, "n == 0 answers without touching a shard");
    }
}
