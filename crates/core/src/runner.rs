//! The measurement protocol of §3.3.
//!
//! "We start executing a query and once the cache is warmed-up and the
//! execution time is stabilized, we report the average execution time over
//! 10 subsequent runs." [`measure`] implements exactly that: repeat until
//! the relative spread of a warm-up window falls under a bound (or the
//! warm-up budget runs out), then time `runs` executions.
//!
//! [`measure_cold`] is the §4 cold-cache variant: caches are dropped before
//! every run, reproducing "the time taken for the first run is significant
//! even for queries exploring a small neighborhood".

use micrograph_common::stats::{OnlineStats, Timer};

use crate::engine::MicroblogEngine;
use crate::workload::{run_query, QueryId, QueryParams};
use crate::Result;

/// Protocol configuration.
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Minimum warm-up executions.
    pub min_warmup: u32,
    /// Warm-up budget (gives up waiting for stability after this many).
    pub max_warmup: u32,
    /// Stability bound: relative spread (stddev/mean) of the last
    /// `min_warmup` warm-up runs.
    pub stable_spread: f64,
    /// Measured executions ("average over 10 subsequent runs").
    pub runs: u32,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig { min_warmup: 3, max_warmup: 15, stable_spread: 0.25, runs: 10 }
    }
}

/// One measurement result.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Mean of the measured runs (ms) — the y-axis of Figure 4.
    pub avg_ms: f64,
    /// Standard deviation of the measured runs (ms).
    pub stddev_ms: f64,
    /// Fastest measured run (ms).
    pub min_ms: f64,
    /// Slowest measured run (ms).
    pub max_ms: f64,
    /// The very first (cold-ish) execution (ms) — §4's warm-up cost.
    pub first_ms: f64,
    /// Warm-up executions performed.
    pub warmup_runs: u32,
    /// Measured executions.
    pub runs: u32,
}

/// Runs `f` under the warm-measure protocol.
pub fn measure<F: FnMut() -> Result<()>>(config: &MeasureConfig, mut f: F) -> Result<Measurement> {
    let mut first_ms = 0.0;
    let mut warmup = 0u32;
    let mut window: Vec<f64> = Vec::new();
    loop {
        let t = Timer::start();
        f()?;
        let ms = t.elapsed_ms();
        if warmup == 0 {
            first_ms = ms;
        }
        warmup += 1;
        window.push(ms);
        if window.len() > config.min_warmup as usize {
            window.remove(0);
        }
        if warmup >= config.min_warmup {
            let mut s = OnlineStats::new();
            for &x in &window {
                s.add(x);
            }
            if s.rel_spread() <= config.stable_spread || warmup >= config.max_warmup {
                break;
            }
        }
    }
    let mut stats = OnlineStats::new();
    for _ in 0..config.runs {
        let t = Timer::start();
        f()?;
        stats.add(t.elapsed_ms());
    }
    Ok(Measurement {
        avg_ms: stats.mean(),
        stddev_ms: stats.stddev(),
        min_ms: stats.min(),
        max_ms: stats.max(),
        first_ms,
        warmup_runs: warmup,
        runs: config.runs,
    })
}

/// Measures one catalog query on any engine under the warm-measure
/// protocol — the single generic path the figure generators share instead
/// of per-engine closures.
pub fn measure_query(
    engine: &dyn MicroblogEngine,
    id: QueryId,
    params: &QueryParams,
    config: &MeasureConfig,
) -> Result<Measurement> {
    measure(config, || run_query(engine, id, params).map(|_| ()))
}

/// Cold-cache measurement: drops the engine's caches before every run.
pub fn measure_cold<F: FnMut() -> Result<()>>(
    engine: &dyn MicroblogEngine,
    runs: u32,
    mut f: F,
) -> Result<Measurement> {
    let mut stats = OnlineStats::new();
    let mut first_ms = 0.0;
    for i in 0..runs {
        engine.drop_caches()?;
        let t = Timer::start();
        f()?;
        let ms = t.elapsed_ms();
        if i == 0 {
            first_ms = ms;
        }
        stats.add(ms);
    }
    Ok(Measurement {
        avg_ms: stats.mean(),
        stddev_ms: stats.stddev(),
        min_ms: stats.min(),
        max_ms: stats.max(),
        first_ms,
        warmup_runs: 0,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_requested_count() {
        let mut calls = 0u32;
        let m = measure(&MeasureConfig { min_warmup: 2, max_warmup: 4, stable_spread: 10.0, runs: 5 }, || {
            calls += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(m.runs, 5);
        assert_eq!(m.warmup_runs, 2, "stable immediately with a huge bound");
        assert_eq!(calls, 7);
        assert!(m.avg_ms >= 0.0);
        assert!(m.min_ms <= m.max_ms);
    }

    #[test]
    fn warmup_capped_at_budget() {
        // A workload with wild variance never stabilizes under a tight
        // bound; the budget must cap it.
        let mut i = 0u64;
        let m = measure(
            &MeasureConfig { min_warmup: 3, max_warmup: 6, stable_spread: 0.000001, runs: 2 },
            || {
                i += 1;
                if i.is_multiple_of(2) {
                    std::thread::sleep(std::time::Duration::from_micros(300));
                }
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(m.warmup_runs, 6);
    }

    #[test]
    fn errors_propagate() {
        let r = measure(&MeasureConfig::default(), || {
            Err(crate::CoreError::NotFound("boom".into()))
        });
        assert!(r.is_err());
    }

    #[test]
    fn first_run_recorded() {
        let mut first = true;
        let m = measure(
            &MeasureConfig { min_warmup: 2, max_warmup: 3, stable_spread: 10.0, runs: 2 },
            || {
                if first {
                    first = false;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(m.first_ms >= 2.0, "first (cold) run slower: {}", m.first_ms);
        assert!(m.avg_ms < m.first_ms);
    }
}
