//! The Table 2 query workload catalog.

use micrograph_common::rng::SplitMix64;

use crate::engine::MicroblogEngine;
use crate::Result;

/// The eleven queries of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum QueryId {
    /// Select: users with follower count over a threshold.
    Q1_1,
    /// Adjacency (1-step): followees of A.
    Q2_1,
    /// Adjacency (2-step): tweets posted by followees of A.
    Q2_2,
    /// Adjacency (3-step): hashtags used by followees of A. (*)
    Q2_3,
    /// Co-occurrence: top-n users most mentioned with A. (*)
    Q3_1,
    /// Co-occurrence: top-n hashtags co-occurring with H.
    Q3_2,
    /// Recommendation: top-n followees of A's followees A doesn't follow. (*)
    Q4_1,
    /// Recommendation: top-n followers of A's followees A doesn't follow.
    Q4_2,
    /// Influence (current): top-n mentioners of A who follow A. (*)
    Q5_1,
    /// Influence (potential): top-n mentioners of A who don't follow A. (*)
    Q5_2,
    /// Shortest path between two users over follows edges. (*)
    Q6_1,
}

impl QueryId {
    /// Every query, Table 2 order.
    pub const ALL: [QueryId; 11] = [
        QueryId::Q1_1,
        QueryId::Q2_1,
        QueryId::Q2_2,
        QueryId::Q2_3,
        QueryId::Q3_1,
        QueryId::Q3_2,
        QueryId::Q4_1,
        QueryId::Q4_2,
        QueryId::Q5_1,
        QueryId::Q5_2,
        QueryId::Q6_1,
    ];

    /// Display id ("Q3.1").
    pub fn label(self) -> &'static str {
        match self {
            QueryId::Q1_1 => "Q1.1",
            QueryId::Q2_1 => "Q2.1",
            QueryId::Q2_2 => "Q2.2",
            QueryId::Q2_3 => "Q2.3",
            QueryId::Q3_1 => "Q3.1",
            QueryId::Q3_2 => "Q3.2",
            QueryId::Q4_1 => "Q4.1",
            QueryId::Q4_2 => "Q4.2",
            QueryId::Q5_1 => "Q5.1",
            QueryId::Q5_2 => "Q5.2",
            QueryId::Q6_1 => "Q6.1",
        }
    }

    /// Table 2 category column.
    pub fn category(self) -> &'static str {
        match self {
            QueryId::Q1_1 => "Select",
            QueryId::Q2_1 => "Adjacency (1-step)",
            QueryId::Q2_2 => "Adjacency (2-step)",
            QueryId::Q2_3 => "Adjacency (3-step)",
            QueryId::Q3_1 | QueryId::Q3_2 => "Co-occurrence",
            QueryId::Q4_1 | QueryId::Q4_2 => "Recommendation",
            QueryId::Q5_1 => "Influence (current)",
            QueryId::Q5_2 => "Influence (potential)",
            QueryId::Q6_1 => "Shortest Path",
        }
    }

    /// Table 2 example column.
    pub fn description(self) -> &'static str {
        match self {
            QueryId::Q1_1 => "All users with a follower count greater than a user-defined threshold",
            QueryId::Q2_1 => "All the followees of a given user A",
            QueryId::Q2_2 => "All the tweets posted by followees of A",
            QueryId::Q2_3 => "All the hashtags used by followees of A",
            QueryId::Q3_1 => "Top-n users most mentioned with user A",
            QueryId::Q3_2 => "Top-n most co-occurring hashtags with hashtag H",
            QueryId::Q4_1 => "Top-n followees of A's followees who A is not following yet",
            QueryId::Q4_2 => "Top-n followers of A's followees who A is not following yet",
            QueryId::Q5_1 => "Top-n users who have mentioned A who are followers of A",
            QueryId::Q5_2 => "Top-n users who have mentioned A but are not direct followers of A",
            QueryId::Q6_1 => "Shortest path between two users where they are connected by follows edges",
        }
    }

    /// Whether the paper discusses this query's performance in detail
    /// (the (*) rows of Table 2).
    pub fn starred(self) -> bool {
        matches!(
            self,
            QueryId::Q2_3 | QueryId::Q3_1 | QueryId::Q4_1 | QueryId::Q5_1 | QueryId::Q5_2 | QueryId::Q6_1
        )
    }

    /// The query's execution-shape class on a sharded engine — what the
    /// serving layer keys per-class deadlines and percentile rows on
    /// (DESIGN.md §4f).
    pub fn class(self) -> QueryClass {
        match self {
            // Q2.1 answers from the subject's owner shard alone.
            QueryId::Q2_1 => QueryClass::Point,
            // Q6.1 runs multi-round distributed-BFS frontier expansions.
            QueryId::Q6_1 => QueryClass::Traversal,
            // Everything else fans out (routed or broadcast) and merges.
            _ => QueryClass::Scatter,
        }
    }
}

/// Execution-shape classes of the catalog queries, as seen by a sharded
/// engine: the axis per-class serving deadlines discriminate on. A point
/// lookup that is out of budget is simply late; a scatter that is out of
/// budget can still shed stragglers; a traversal compounds rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Single-shard lookups (Q2.1).
    Point,
    /// One-round fan-out/merge queries (Q1.1, Q2.2, Q2.3, Q3.*, Q4.*, Q5.*).
    Scatter,
    /// Multi-round frontier traversals (Q6.1).
    Traversal,
}

impl QueryClass {
    /// Every class, report-row order.
    pub const ALL: [QueryClass; 3] =
        [QueryClass::Point, QueryClass::Scatter, QueryClass::Traversal];

    /// Display label ("point" / "scatter" / "traversal").
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::Point => "point",
            QueryClass::Scatter => "scatter",
            QueryClass::Traversal => "traversal",
        }
    }
}

/// Parameters for one workload execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParams {
    /// The subject user A.
    pub uid: i64,
    /// The second user B (shortest path).
    pub uid_b: i64,
    /// The subject hashtag H.
    pub tag: String,
    /// The Q1 follower threshold.
    pub threshold: i64,
    /// Top-n limit.
    pub n: usize,
    /// Shortest-path hop bound (the paper used 3 on the navigation engine).
    pub max_hops: u32,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams { uid: 1, uid_b: 2, tag: "tag1".into(), threshold: 100, n: 10, max_hops: 4 }
    }
}

impl QueryParams {
    /// Samples parameters uniformly over `1..=users` (deterministic in the
    /// rng state). The tag is drawn from the head of the Zipf vocabulary so
    /// it is likely to occur.
    pub fn sample(rng: &mut SplitMix64, users: u64, vocab: u64) -> QueryParams {
        let uid = rng.next_range(1, users + 1) as i64;
        let mut uid_b = rng.next_range(1, users + 1) as i64;
        if uid_b == uid {
            uid_b = if uid == users as i64 { 1 } else { uid + 1 };
        }
        QueryParams {
            uid,
            uid_b,
            tag: format!("tag{}", rng.next_range(1, vocab.clamp(2, 16) + 1)),
            threshold: rng.next_range(1, 64) as i64,
            n: 10,
            max_hops: 4,
        }
    }
}

/// Runs one query on an engine, returning the number of result rows —
/// the x-axis of Figure 4(a–d).
pub fn run_query(
    engine: &dyn MicroblogEngine,
    id: QueryId,
    params: &QueryParams,
) -> Result<u64> {
    Ok(match id {
        QueryId::Q1_1 => engine.users_with_followers_over(params.threshold)?.len() as u64,
        QueryId::Q2_1 => engine.followees(params.uid)?.len() as u64,
        QueryId::Q2_2 => engine.followee_tweets(params.uid)?.len() as u64,
        QueryId::Q2_3 => engine.followee_hashtags(params.uid)?.len() as u64,
        QueryId::Q3_1 => engine.co_mentioned_users(params.uid, params.n)?.len() as u64,
        QueryId::Q3_2 => engine.co_occurring_hashtags(&params.tag, params.n)?.len() as u64,
        QueryId::Q4_1 => engine.recommend_followees(params.uid, params.n)?.len() as u64,
        QueryId::Q4_2 => engine.recommend_followers(params.uid, params.n)?.len() as u64,
        QueryId::Q5_1 => engine.current_influence(params.uid, params.n)?.len() as u64,
        QueryId::Q5_2 => engine.potential_influence(params.uid, params.n)?.len() as u64,
        QueryId::Q6_1 => engine
            .shortest_path_len(params.uid, params.uid_b, params.max_hops)?
            .map_or(0, |_| 1),
    })
}

/// Renders Table 2.
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<6} {:<22} {}\n", "Query", "Category", "Example"));
    for q in QueryId::ALL {
        let star = if q.starred() { " (*)" } else { "" };
        out.push_str(&format!(
            "{:<6} {:<22} {}{}\n",
            q.label(),
            q.category(),
            q.description(),
            star
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete() {
        assert_eq!(QueryId::ALL.len(), 11);
        let t = render_table2();
        for q in QueryId::ALL {
            assert!(t.contains(q.label()), "{} missing from table", q.label());
        }
        assert_eq!(t.matches("(*)").count(), 6, "six starred queries");
    }

    #[test]
    fn params_sampling_in_range() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            let p = QueryParams::sample(&mut rng, 50, 16);
            assert!((1..=50).contains(&p.uid));
            assert!((1..=50).contains(&p.uid_b));
            assert_ne!(p.uid, p.uid_b);
            assert!(p.tag.starts_with("tag"));
        }
    }

    #[test]
    fn classes_partition_the_catalog() {
        for q in QueryId::ALL {
            assert!(QueryClass::ALL.contains(&q.class()), "{} unclassed", q.label());
        }
        assert_eq!(QueryId::Q2_1.class(), QueryClass::Point);
        assert_eq!(QueryId::Q6_1.class(), QueryClass::Traversal);
        let scatters =
            QueryId::ALL.iter().filter(|q| q.class() == QueryClass::Scatter).count();
        assert_eq!(scatters, 9, "nine fan-out queries");
    }

    #[test]
    fn categories_match_paper() {
        assert_eq!(QueryId::Q1_1.category(), "Select");
        assert_eq!(QueryId::Q6_1.category(), "Shortest Path");
        assert!(QueryId::Q3_1.starred());
        assert!(!QueryId::Q3_2.starred());
    }
}
