//! The engine-agnostic query interface: every query of Table 2.
//!
//! Semantics are pinned down here once so both adapters implement the same
//! contract (the cross-engine equivalence property tests depend on it):
//!
//! * Identifiers are *external* ids (`uid`, `tid`, tag strings) — never
//!   engine-internal node ids.
//! * Plain lists come back sorted ascending; top-n lists come back sorted
//!   by count descending with ties broken by ascending key, truncated to n.
//! * Co-occurrence/influence counts follow **edge multiplicity** (a tweet
//!   mentioning the same user twice counts twice) — the multigraph
//!   semantics a declarative pattern match produces naturally.
//! * Q5 "influence": following the paper's §3.3 prose, *current* influence
//!   counts mentioners who already follow A; *potential* counts mentioners
//!   who do not. (Table 2's wording says "followees"; we follow the prose
//!   and document the choice — see DESIGN.md.)
//! * Q6 shortest paths treat `follows` as undirected (the paper bounds the
//!   search at 3 hops on Sparksee; the bound is a parameter here).

use std::fmt;

/// A ranked result entry: an external key with its count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ranked<K> {
    /// External key (uid, tid or tag).
    pub key: K,
    /// Occurrence count.
    pub count: u64,
}

impl<K> Ranked<K> {
    /// Convenience constructor.
    pub fn new(key: K, count: u64) -> Self {
        Ranked { key, count }
    }
}

/// Errors from the workload layer.
#[derive(Debug)]
pub enum CoreError {
    /// The referenced user/tweet/hashtag does not exist.
    NotFound(String),
    /// Error from the arbordb engine or its query layer.
    Arbor(String),
    /// Error from the bitgraph engine.
    Bit(String),
    /// Ingest/dataset error.
    Ingest(String),
    /// A shard (or an injected fault standing in for one) could not answer.
    /// Retryable: the serving stack's [`crate::fault::RetryPolicy`] treats
    /// this as transient until attempts are exhausted.
    Unavailable(String),
    /// The per-query deadline budget ran out. Not retryable — retrying
    /// cannot create more budget.
    Timeout(String),
}

impl CoreError {
    /// True when retrying the same call may succeed (operational faults),
    /// false for semantic errors (`NotFound`, engine errors) and for
    /// [`CoreError::Timeout`], where the budget is already spent.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CoreError::Unavailable(_))
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotFound(m) => write!(f, "not found: {m}"),
            CoreError::Arbor(m) => write!(f, "arbordb: {m}"),
            CoreError::Bit(m) => write!(f, "bitgraph: {m}"),
            CoreError::Ingest(m) => write!(f, "ingest: {m}"),
            CoreError::Unavailable(m) => write!(f, "unavailable: {m}"),
            CoreError::Timeout(m) => write!(f, "timeout: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// BitEngine's write/publish discipline (DESIGN.md §4j) — a pure
/// performance toggle in the style of [`arbor_ql::ExecMode`]: flipping it
/// never moves a byte of any answer, error text, or serve digest.
///
/// * [`WriteMode::Snapshot`] (the default): reads run lock-free over an
///   epoch-published immutable `Arc<Graph>` generation; every commit
///   rebuilds and swaps the published snapshot, so a write burst never
///   blocks a reader.
/// * [`WriteMode::Locked`]: the original semantic oracle — every read
///   takes the graph's `RwLock` read side and sees the canonical copy
///   directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Readers share the writer's `RwLock` (the pre-snapshot oracle).
    Locked,
    /// Readers clone a published `Arc<Graph>` generation; writers swap a
    /// fresh generation in at commit. Readers never block.
    #[default]
    Snapshot,
}

impl WriteMode {
    /// Stable label for reports and bench artifacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            WriteMode::Locked => "locked",
            WriteMode::Snapshot => "snapshot",
        }
    }
}

impl From<arbor_ql::QlError> for CoreError {
    fn from(e: arbor_ql::QlError) -> Self {
        CoreError::Arbor(e.to_string())
    }
}

impl From<arbordb::ArborError> for CoreError {
    fn from(e: arbordb::ArborError) -> Self {
        CoreError::Arbor(e.to_string())
    }
}

impl From<bitgraph::BitError> for CoreError {
    fn from(e: bitgraph::BitError) -> Self {
        CoreError::Bit(e.to_string())
    }
}

use crate::Result;
use micrograph_common::topn::{topk_partial, Counted, TopKPartial};

/// The microblogging query workload (Table 2) over any graph engine.
///
/// The trait is object safe — callers hold `&dyn MicroblogEngine` (or
/// `Arc<dyn MicroblogEngine>` in the serving layer) — and requires
/// `Send + Sync` so one engine can serve concurrent readers. Every method,
/// including [`MicroblogEngine::apply_event`], takes `&self`; engines that
/// need mutation use interior mutability behind their own locks.
pub trait MicroblogEngine: Send + Sync {
    /// Engine name for reports ("arbordb" / "bitgraph").
    fn name(&self) -> &'static str;

    // ---- Q1: selection ------------------------------------------------------

    /// Q1.1 — uids of users whose follower count exceeds `threshold`
    /// (ascending).
    fn users_with_followers_over(&self, threshold: i64) -> Result<Vec<i64>>;

    // ---- Q2: adjacency ------------------------------------------------------

    /// Q2.1 — uids of A's followees (1-step, ascending).
    fn followees(&self, uid: i64) -> Result<Vec<i64>>;

    /// Q2.2 — tids of tweets posted by A's followees (2-step, ascending).
    fn followee_tweets(&self, uid: i64) -> Result<Vec<i64>>;

    /// Q2.3 — distinct hashtags used by A's followees (3-step, ascending).
    fn followee_hashtags(&self, uid: i64) -> Result<Vec<String>>;

    // ---- Q3: co-occurrence --------------------------------------------------

    /// Q3.1 — top-n users most mentioned together with A.
    fn co_mentioned_users(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>>;

    /// Q3.2 — top-n hashtags most co-occurring with `tag`.
    fn co_occurring_hashtags(&self, tag: &str, n: usize) -> Result<Vec<Ranked<String>>>;

    // ---- Q4: recommendation -------------------------------------------------

    /// Q4.1 — top-n 2-step followees of A that A does not follow, ranked by
    /// how many of A's followees follow them.
    fn recommend_followees(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>>;

    /// Q4.2 — top-n followers of A's followees that A does not follow.
    fn recommend_followers(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>>;

    // ---- Q5: influence ------------------------------------------------------

    /// Q5.1 — top-n users who mention A and already follow A (current
    /// influence).
    fn current_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>>;

    /// Q5.2 — top-n users who mention A but do not follow A (potential
    /// influence).
    fn potential_influence(&self, uid: i64, n: usize) -> Result<Vec<Ranked<i64>>>;

    // ---- Q6: shortest path --------------------------------------------------

    /// Q6.1 — length (hops) of the shortest undirected `follows` path from
    /// A to B within `max_hops`, or `None`.
    fn shortest_path_len(&self, a: i64, b: i64, max_hops: u32) -> Result<Option<u32>>;

    // ---- composite-query building blocks (§3.3) -----------------------------

    /// Tids of tweets tagged with `tag` (ascending).
    fn tweets_with_hashtag(&self, tag: &str) -> Result<Vec<i64>>;

    /// Number of retweets a tweet received (0 when retweets are absent).
    fn retweet_count(&self, tid: i64) -> Result<u64>;

    /// Uid of the user who posted `tid`.
    fn poster_of(&self, tid: i64) -> Result<i64>;

    // ---- shard-local kernels (scale-out; DESIGN.md §4c) ---------------------
    //
    // [`crate::shard::ShardedEngine`] executes Q1–Q6 as per-shard partial
    // kernels plus engine-agnostic merges. The kernels in this section are
    // deliberately *raw*: each reports exactly what this engine stores
    // locally — no global filtering, no top-n truncation — so the merge
    // layer in `shard.rs` owns all cross-shard semantics. On an unsharded
    // engine they simply describe the whole graph. (The *bounded* pushdown
    // variants live in the next section.)

    /// True when a user node with this uid exists in this engine.
    fn has_user(&self, uid: i64) -> Result<bool>;

    /// Q2.2 kernel — tids of tweets posted by any of the given users,
    /// ascending. Users without a local node contribute nothing.
    fn posted_tweets_kernel(&self, uids: &[i64]) -> Result<Vec<i64>>;

    /// Q2.3 kernel — distinct hashtags on tweets posted by any of the given
    /// users, ascending.
    fn hashtags_kernel(&self, uids: &[i64]) -> Result<Vec<String>>;

    /// Q4.1 kernel — per-target counts of `follows` edges leaving the given
    /// users (target uid → number of the given users following it),
    /// ascending by uid.
    fn count_followees_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>>;

    /// Q4.2 kernel — per-source counts of locally stored `follows` edges
    /// into the given users (source uid → number of the given users it
    /// follows), ascending by uid.
    fn count_followers_kernel(&self, uids: &[i64]) -> Result<Vec<(i64, u64)>>;

    /// Q3.1 kernel — full co-mention counts for `uid` over locally stored
    /// tweets (edge multiplicity, untruncated), ascending by uid.
    fn co_mention_counts_kernel(&self, uid: i64) -> Result<Vec<(i64, u64)>>;

    /// Q3.2 kernel — full co-occurrence counts for `tag` over locally
    /// stored tweets (edge multiplicity, untruncated), ascending by tag.
    fn co_tag_counts_kernel(&self, tag: &str) -> Result<Vec<(String, u64)>>;

    /// Q6 kernel — one distributed-BFS round: distinct users adjacent to
    /// any of the given users through locally stored `follows` edges
    /// (either direction), ascending. May include the inputs themselves
    /// when cycles exist; the BFS driver filters visited nodes.
    fn follow_frontier_kernel(&self, uids: &[i64]) -> Result<Vec<i64>>;

    // ---- top-n pushdown kernels (tail latency; DESIGN.md §4f) ---------------
    //
    // Bounded variants of the counting kernels above: instead of shipping
    // the full local count map, a shard returns its `k` best entries plus a
    // threshold bound on anything it cut ([`TopKPartial`]). The sharded
    // merge layer runs a threshold-algorithm (TA) loop over these, fetching
    // exact counts for candidate keys via the `*_counts_for_kernel` twins
    // only while the summed bounds could still change the global top-n.
    // Every local list follows the global ordering invariant (count desc,
    // ties ascending key), so pushdown never perturbs tie order. Default
    // implementations derive both shapes from the full kernels — adapters
    // override where the engine can prune natively (e.g. a `LIMIT` the
    // declarative engine pushes into its sort operator).

    /// Q3.1 pushdown kernel — the `k` heaviest local co-mention partners of
    /// `uid` plus the threshold bound for cut keys.
    fn co_mention_topn_kernel(&self, uid: i64, k: usize) -> Result<TopKPartial<i64>> {
        Ok(pushdown_partial(self.co_mention_counts_kernel(uid)?, &[], k))
    }

    /// Q3.1 candidate-count kernel — exact local co-mention counts for the
    /// given (ascending-sorted) candidate uids; absent keys are omitted.
    fn co_mention_counts_for_kernel(&self, uid: i64, keys: &[i64]) -> Result<Vec<(i64, u64)>> {
        Ok(counts_for(self.co_mention_counts_kernel(uid)?, keys))
    }

    /// Q3.2 pushdown kernel — the `k` heaviest local co-occurring hashtags
    /// of `tag` plus the threshold bound for cut keys.
    fn co_tag_topn_kernel(&self, tag: &str, k: usize) -> Result<TopKPartial<String>> {
        Ok(pushdown_partial(self.co_tag_counts_kernel(tag)?, &[], k))
    }

    /// Q3.2 candidate-count kernel — exact local co-occurrence counts for
    /// the given (ascending-sorted) candidate tags; absent keys are omitted.
    fn co_tag_counts_for_kernel(&self, tag: &str, keys: &[String]) -> Result<Vec<(String, u64)>> {
        Ok(counts_for(self.co_tag_counts_kernel(tag)?, keys))
    }

    /// Q4.1 pushdown kernel — the `k` heaviest local followee-count targets
    /// for the given source users, with every uid in `exclude` (ascending-
    /// sorted: the recommendee and their existing followees) filtered out
    /// *before* truncation, plus the threshold bound for cut keys.
    fn count_followees_topn_kernel(
        &self,
        uids: &[i64],
        exclude: &[i64],
        k: usize,
    ) -> Result<TopKPartial<i64>> {
        Ok(pushdown_partial(self.count_followees_kernel(uids)?, exclude, k))
    }

    /// Q4.1 candidate-count kernel — exact local followee counts for the
    /// given (ascending-sorted) candidate uids; absent keys are omitted.
    fn count_followees_counts_for_kernel(
        &self,
        uids: &[i64],
        keys: &[i64],
    ) -> Result<Vec<(i64, u64)>> {
        Ok(counts_for(self.count_followees_kernel(uids)?, keys))
    }

    /// Q4.2 pushdown kernel — the `k` heaviest local follower-count sources
    /// for the given target users, `exclude` filtered before truncation,
    /// plus the threshold bound for cut keys.
    fn count_followers_topn_kernel(
        &self,
        uids: &[i64],
        exclude: &[i64],
        k: usize,
    ) -> Result<TopKPartial<i64>> {
        Ok(pushdown_partial(self.count_followers_kernel(uids)?, exclude, k))
    }

    /// Q4.2 candidate-count kernel — exact local follower counts for the
    /// given (ascending-sorted) candidate uids; absent keys are omitted.
    fn count_followers_counts_for_kernel(
        &self,
        uids: &[i64],
        keys: &[i64],
    ) -> Result<Vec<(i64, u64)>> {
        Ok(counts_for(self.count_followers_kernel(uids)?, keys))
    }

    /// Q5 pushdown kernel — the `k` heaviest local mentioners of `uid`
    /// (current influence when `current`, potential otherwise) plus the
    /// threshold bound. A mentioner's tweets all live on its poster's
    /// shard, so per-shard keys are disjoint and a single merge round of
    /// these partials is already exact.
    fn influence_topn_kernel(&self, uid: i64, current: bool, k: usize) -> Result<TopKPartial<i64>> {
        let ranked = if current {
            self.current_influence(uid, k.saturating_add(1))?
        } else {
            self.potential_influence(uid, k.saturating_add(1))?
        };
        let mut items: Vec<Counted<i64>> =
            ranked.into_iter().map(|r| Counted { key: r.key, count: r.count }).collect();
        let bound = if items.len() > k { items[k].count } else { 0 };
        items.truncate(k);
        Ok(TopKPartial { top: items, bound })
    }

    /// Creates a bare user node for `uid` when absent — a ghost replica
    /// used as the local endpoint of a cross-shard edge (`followers`
    /// starts at 0, other attributes empty). Idempotent.
    fn ensure_user(&self, uid: i64) -> Result<()>;

    /// Adjusts the stored `followers` property of `uid` by `delta` — the
    /// owner-shard half of a cross-shard follow. **Upserts**: when the user
    /// does not exist locally yet (a cross-shard follow replayed ahead of
    /// the owner's `new user` event), a bare placeholder is created first
    /// and the delta applied to it; a later `NewUser` event fills in the
    /// attributes without resetting the accumulated count.
    fn bump_followers(&self, uid: i64, delta: i64) -> Result<()>;

    // ---- update workload (§5 future work) -----------------------------------

    /// Applies one streaming update event (new user / follow / tweet),
    /// keeping the `followers` property consistent with incoming `follows`
    /// edges. Semantics are identical across adapters — the cross-engine
    /// equivalence invariant covers post-update state too.
    fn apply_event(&self, event: &micrograph_datagen::UpdateEvent) -> Result<()>;

    /// Applies a batch of streaming events as one group commit (DESIGN.md
    /// §4j). The default — a per-event loop — is the semantic oracle:
    /// every override must leave byte-identical state on success, and on a
    /// mid-batch error must fail with the same error text and leave
    /// exactly the state the looped oracle leaves (the successful prefix
    /// applied, the failing event absent). Batching is a pure performance
    /// lever: one WAL lock acquisition / one snapshot publish per batch
    /// instead of per event.
    fn apply_event_batch(&self, events: &[micrograph_datagen::UpdateEvent]) -> Result<()> {
        for event in events {
            self.apply_event(event)?;
        }
        Ok(())
    }

    // ---- instrumentation ----------------------------------------------------

    /// Resets the engine's operation counters.
    fn reset_stats(&self);

    /// Engine operations since the last reset (db hits / navigation calls).
    fn ops_count(&self) -> u64;

    /// Drops caches so the next query runs cold (no-op for engines that
    /// serve entirely from memory).
    fn drop_caches(&self) -> Result<()>;

    /// Fault-layer accounting (injected faults, retries, caught panics)
    /// accumulated since construction. Plain engines report zeros; the
    /// chaos wrapper and the sharded merge layer override this and fold in
    /// their inner engines' counters (see `crate::fault`).
    fn fault_stats(&self) -> crate::fault::FaultStats {
        crate::fault::FaultStats::default()
    }

    /// The scatter execution mode, when this engine is (or wraps) a sharded
    /// composition — `None` for monolithic engines, which have no scatter
    /// path. Wrappers delegate to their inner engine.
    fn scatter_mode(&self) -> Option<crate::shard::ScatterMode> {
        None
    }

    /// Switches the scatter execution mode, returning `false` when the
    /// engine has no scatter path (monoliths). `&self` like every other
    /// method — benches flip one built engine between modes mid-run.
    fn set_scatter_mode(&self, _mode: crate::shard::ScatterMode) -> bool {
        false
    }

    /// The ArborQL executor mode, when this engine is (or wraps/shards) the
    /// declarative arbordb backend — `None` for engines with no declarative
    /// query layer (bitgraph). Like [`MicroblogEngine::scatter_mode`], a
    /// pure performance toggle: flipping it never moves a byte of any
    /// answer (DESIGN.md §4g).
    fn exec_mode(&self) -> Option<arbor_ql::ExecMode> {
        None
    }

    /// Switches the ArborQL executor at runtime, returning `false` when the
    /// engine has no declarative query layer. `&self` like every other
    /// method — benches flip one built engine between modes mid-run.
    fn set_exec_mode(&self, _mode: arbor_ql::ExecMode) -> bool {
        false
    }

    /// Whether shard-local kernels execute their whole uid batch as ONE
    /// set-oriented query (DESIGN.md §4h) — `None` for engines without a
    /// batching toggle (bitgraph's kernels are native in-memory loops with
    /// no per-call dispatch to amortize). Like the other toggles, a pure
    /// performance switch: flipping it never moves a byte of any answer.
    fn batched_kernels(&self) -> Option<bool> {
        None
    }

    /// Switches kernel batching at runtime, returning `false` when the
    /// engine has no toggle. `&self` like every other method — benches
    /// flip one built engine between modes mid-run.
    fn set_batched_kernels(&self, _on: bool) -> bool {
        false
    }

    /// The snapshot-read/write-publish discipline, when this engine is (or
    /// wraps/shards) the bitgraph backend — `None` for engines whose reads
    /// never contend with a writer lock (arbordb's page store is already
    /// MVCC-ish: readers hold no lock across a query). Like the other
    /// toggles, a pure performance switch (DESIGN.md §4j): flipping it
    /// never moves a byte of any answer.
    fn write_mode(&self) -> Option<WriteMode> {
        None
    }

    /// Switches the write/publish discipline at runtime, returning `false`
    /// when the engine has no toggle. `&self` like every other method —
    /// benches flip one built engine between modes mid-run. Switching into
    /// [`WriteMode::Snapshot`] republishes from the canonical graph so a
    /// stale generation can never serve.
    fn set_write_mode(&self, _mode: WriteMode) -> bool {
        false
    }

    /// Replicas behind each shard slot when this engine is (or wraps) a
    /// replicated sharded composition (DESIGN.md §4i) — `None` for
    /// monoliths. `Some(1)` means sharded but unreplicated; `Some(R)` with
    /// R > 1 means every shard is served by an R-way replica group with
    /// deterministic primary routing and failover.
    fn replica_count(&self) -> Option<usize> {
        None
    }
}

// ---- shared pushdown-kernel shapes -----------------------------------------
// Both bounded-top-k and candidate-probe defaults derive from one full
// count list through these two helpers; an adapter override only has to
// reproduce *these* transformations to stay byte-compatible with the
// defaults (the equivalence matrix checks it does).

/// Filters `exclude` out of a full `(key, count)` list (ascending by key)
/// and truncates to the `k` heaviest entries plus the threshold bound for
/// everything cut — the shape every `*_topn_kernel` returns.
pub fn pushdown_partial<K: Ord>(
    full: Vec<(K, u64)>,
    exclude: &[K],
    k: usize,
) -> TopKPartial<K> {
    topk_partial(
        full.into_iter()
            .filter(|(key, _)| exclude.binary_search(key).is_err())
            .map(|(key, count)| Counted { key, count })
            .collect(),
        k,
    )
}

/// Restricts a full `(key, count)` list to the given ascending-sorted
/// candidate keys, omitting absent ones — the shape every
/// `*_counts_for_kernel` returns.
pub fn counts_for<K: Ord>(full: Vec<(K, u64)>, keys: &[K]) -> Vec<(K, u64)> {
    full.into_iter().filter(|(key, _)| keys.binary_search(key).is_ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(CoreError::NotFound("user 5".into()).to_string().contains("user 5"));
        assert!(CoreError::Arbor("x".into()).to_string().contains("arbordb"));
    }

    #[test]
    fn ranked_constructor() {
        let r = Ranked::new(5i64, 10);
        assert_eq!(r.key, 5);
        assert_eq!(r.count, 10);
    }

    #[test]
    fn trait_is_object_safe_and_thread_safe() {
        // Compile-time properties the serving layer depends on: the trait
        // stays object safe and its trait objects are shareable.
        fn takes_dyn(_: Option<&dyn MicroblogEngine>) {}
        fn send_sync<T: Send + Sync + ?Sized>() {}
        takes_dyn(None);
        send_sync::<dyn MicroblogEngine>();
    }
}
