//! Data ingestion: one set of CSV sources, two bulk loaders (§3.2).
//!
//! "The same source files containing the nodes and edges were used with
//! both databases." This module maps a [`CsvFiles`] bundle (from
//! `micrograph-datagen`) onto the arbordb batch importer's [`ImportSource`]
//! and the bitgraph loader's [`LoadScript`], runs them, and returns the
//! progress reports that regenerate Figures 2 and 3.

use std::path::Path;
use std::sync::Arc;

use arbordb::db::{DbConfig, GraphDb};
use arbordb::import::{
    bulk_import, ColumnSpec, ColumnType, ImportOptions, ImportReport, ImportSource, NodeFile,
    RelFile,
};
use bitgraph::graph::{DataType, Graph};
use bitgraph::loader::{load, EdgeSpec, LoadConfig, LoadOptions, LoadReport, LoadScript, NodeSpec};
use micrograph_datagen::{CsvFiles, Dataset};

use crate::adapters::{ArborEngine, BitEngine};
use crate::engine::MicroblogEngine;
use crate::fault::{ChaosEngine, DegradationMode, FaultPlan, RetryPolicy};
use crate::schema;
use crate::shard::{partition_dataset, ShardedEngine};
use crate::{CoreError, Result};

/// Builds the arbordb import description for a CSV bundle.
pub fn arbor_source(files: &CsvFiles) -> ImportSource {
    let mut source = ImportSource {
        nodes: vec![
            NodeFile {
                label: schema::USER.into(),
                path: files.users.clone(),
                columns: vec![
                    ColumnSpec::new(schema::UID, ColumnType::Int),
                    ColumnSpec::new(schema::NAME, ColumnType::Str),
                    ColumnSpec::new(schema::FOLLOWERS, ColumnType::Int),
                    ColumnSpec::new(schema::VERIFIED, ColumnType::Int),
                ],
                id_column: schema::UID.into(),
            },
            NodeFile {
                label: schema::TWEET.into(),
                path: files.tweets.clone(),
                columns: vec![
                    ColumnSpec::new(schema::TID, ColumnType::Int),
                    ColumnSpec::new(schema::TEXT, ColumnType::Str),
                ],
                id_column: schema::TID.into(),
            },
            NodeFile {
                label: schema::HASHTAG.into(),
                path: files.hashtags.clone(),
                columns: vec![ColumnSpec::new(schema::TAG, ColumnType::Str)],
                id_column: schema::TAG.into(),
            },
        ],
        rels: vec![
            RelFile {
                rel_type: schema::FOLLOWS.into(),
                path: files.follows.clone(),
                src: (schema::USER.into(), ColumnType::Int),
                dst: (schema::USER.into(), ColumnType::Int),
                extra: vec![],
            },
            RelFile {
                rel_type: schema::POSTS.into(),
                path: files.posts.clone(),
                src: (schema::USER.into(), ColumnType::Int),
                dst: (schema::TWEET.into(), ColumnType::Int),
                extra: vec![],
            },
            RelFile {
                rel_type: schema::MENTIONS.into(),
                path: files.mentions.clone(),
                src: (schema::TWEET.into(), ColumnType::Int),
                dst: (schema::USER.into(), ColumnType::Int),
                extra: vec![],
            },
            RelFile {
                rel_type: schema::TAGS.into(),
                path: files.tags.clone(),
                src: (schema::TWEET.into(), ColumnType::Int),
                dst: (schema::HASHTAG.into(), ColumnType::Str),
                extra: vec![],
            },
        ],
        indexes: vec![
            (schema::USER.into(), schema::UID.into()),
            // Ordered index serving Q1.1's range predicate (`followers > th`)
            // as a NodeIndexRangeSeek instead of a user scan; maintained
            // incrementally by `set_node_prop` on live follower updates.
            (schema::USER.into(), schema::FOLLOWERS.into()),
            (schema::TWEET.into(), schema::TID.into()),
            (schema::HASHTAG.into(), schema::TAG.into()),
        ],
    };
    if let Some(rt) = &files.retweets {
        source.rels.push(RelFile {
            rel_type: schema::RETWEETS.into(),
            path: rt.clone(),
            src: (schema::TWEET.into(), ColumnType::Int),
            dst: (schema::TWEET.into(), ColumnType::Int),
            extra: vec![],
        });
    }
    source
}

/// Builds the bitgraph load script for the same CSV bundle. Paths are
/// relative to `files.dir` (the loader's base directory).
pub fn bit_script(files: &CsvFiles, config: LoadConfig) -> LoadScript {
    let rel = |p: &Path| p.file_name().expect("csv file name").into();
    let mut script = LoadScript {
        nodes: vec![
            NodeSpec {
                type_name: schema::USER.into(),
                columns: vec![
                    (schema::UID.into(), DataType::Integer),
                    (schema::NAME.into(), DataType::String),
                    (schema::FOLLOWERS.into(), DataType::Integer),
                    (schema::VERIFIED.into(), DataType::Integer),
                ],
                file: rel(&files.users),
                indexed: vec![schema::UID.into()],
            },
            NodeSpec {
                type_name: schema::TWEET.into(),
                columns: vec![
                    (schema::TID.into(), DataType::Integer),
                    (schema::TEXT.into(), DataType::String),
                ],
                file: rel(&files.tweets),
                indexed: vec![schema::TID.into()],
            },
            NodeSpec {
                type_name: schema::HASHTAG.into(),
                columns: vec![(schema::TAG.into(), DataType::String)],
                file: rel(&files.hashtags),
                indexed: vec![schema::TAG.into()],
            },
        ],
        edges: vec![
            EdgeSpec {
                type_name: schema::FOLLOWS.into(),
                src: (schema::USER.into(), schema::UID.into()),
                dst: (schema::USER.into(), schema::UID.into()),
                file: rel(&files.follows),
            },
            EdgeSpec {
                type_name: schema::POSTS.into(),
                src: (schema::USER.into(), schema::UID.into()),
                dst: (schema::TWEET.into(), schema::TID.into()),
                file: rel(&files.posts),
            },
            EdgeSpec {
                type_name: schema::MENTIONS.into(),
                src: (schema::TWEET.into(), schema::TID.into()),
                dst: (schema::USER.into(), schema::UID.into()),
                file: rel(&files.mentions),
            },
            EdgeSpec {
                type_name: schema::TAGS.into(),
                src: (schema::TWEET.into(), schema::TID.into()),
                dst: (schema::HASHTAG.into(), schema::TAG.into()),
                file: rel(&files.tags),
            },
        ],
        config,
    };
    if let Some(rt) = &files.retweets {
        script.edges.push(EdgeSpec {
            type_name: schema::RETWEETS.into(),
            src: (schema::TWEET.into(), schema::TID.into()),
            dst: (schema::TWEET.into(), schema::TID.into()),
            file: rel(rt),
        });
    }
    script
}

/// Renders the bit script as loader-script text (round-trips through
/// [`bitgraph::loader::parse_script`]; used by the import example).
pub fn bit_script_text(script: &LoadScript) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "options extent_kb {} cache_kb {} materialize {} recovery {}\n",
        script.config.extent_kb,
        script.config.cache_kb,
        if script.config.materialize { "on" } else { "off" },
        if script.config.recovery { "on" } else { "off" },
    ));
    for n in &script.nodes {
        let cols = n
            .columns
            .iter()
            .map(|(name, dt)| format!("{name} {}", dtype_name(*dt)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "node {} ({cols}) from '{}'",
            n.type_name,
            n.file.display()
        ));
        if !n.indexed.is_empty() {
            out.push_str(&format!(" index {}", n.indexed.join(" ")));
        }
        out.push('\n');
    }
    for e in &script.edges {
        out.push_str(&format!(
            "edge {} ({}.{}, {}.{}) from '{}'\n",
            e.type_name,
            e.src.0,
            e.src.1,
            e.dst.0,
            e.dst.1,
            e.file.display()
        ));
    }
    out
}

fn dtype_name(dt: DataType) -> &'static str {
    match dt {
        DataType::Integer => "integer",
        DataType::String => "string",
        DataType::Double => "double",
        DataType::Boolean => "boolean",
    }
}

/// Imports the CSV bundle into a fresh arbordb instance.
///
/// `db_dir = None` uses an in-memory database (benchmarks that should not
/// measure the host filesystem); `Some(dir)` builds an on-disk one whose
/// size is the paper's disk-space metric.
pub fn ingest_arbor(
    files: &CsvFiles,
    db_dir: Option<&Path>,
    db_config: DbConfig,
    options: &ImportOptions,
) -> Result<(Arc<GraphDb>, ImportReport)> {
    let db = match db_dir {
        Some(dir) => GraphDb::open(dir, db_config)?,
        None => GraphDb::open_memory(db_config)?,
    };
    let source = arbor_source(files);
    let report = bulk_import(&db, &source, options)?;
    Ok((Arc::new(db), report))
}

/// Loads the CSV bundle into a fresh bitgraph instance.
pub fn ingest_bit(
    files: &CsvFiles,
    graph_path: Option<&Path>,
    config: LoadConfig,
    options: &LoadOptions,
) -> Result<(Graph, LoadReport)> {
    let script = bit_script(files, config);
    let (g, report) = load(graph_path, &script, &files.dir, options)?;
    if report.aborted {
        return Err(CoreError::Ingest("bitgraph load aborted by deadline".into()));
    }
    Ok((g, report))
}

/// Reports from building both engines off one CSV bundle.
#[derive(Debug, Clone, Default)]
pub struct IngestReports {
    /// The arbordb import report (Figure 2 material).
    pub arbor: ImportReport,
    /// The bitgraph load report (Figure 3 material).
    pub bit: LoadReport,
}

/// Convenience: ingest into both engines with default settings, returning
/// the two workload adapters plus reports.
pub fn build_engines(files: &CsvFiles) -> Result<(ArborEngine, BitEngine, IngestReports)> {
    let (db, arbor_report) = ingest_arbor(
        files,
        None,
        DbConfig::default(),
        &ImportOptions { sample_interval: 5_000, ..Default::default() },
    )?;
    let (g, bit_report) = ingest_bit(
        files,
        None,
        LoadConfig::default(),
        &LoadOptions { sample_interval: 5_000, abort_after: None },
    )?;
    Ok((
        ArborEngine::new(db),
        BitEngine::new(g)?,
        IngestReports { arbor: arbor_report, bit: bit_report },
    ))
}

/// Partitions `dataset` into `shards` hash-partitions (see
/// [`crate::shard`]), writes each partition's CSV bundle under
/// `dir/shard-N`, ingests every partition into BOTH backends with default
/// settings, and returns one [`ShardedEngine`] per backend
/// (arbordb-backed, bitgraph-backed). The engines run with the default
/// [`crate::shard::ScatterMode::Parallel`]; flip one with
/// `set_scatter_mode` (answers are byte-identical either way).
pub fn build_sharded_engines(
    dataset: &Dataset,
    dir: &Path,
    shards: usize,
) -> Result<(ShardedEngine, ShardedEngine)> {
    let parts = partition_dataset(dataset, shards);
    let mut arbors: Vec<Box<dyn MicroblogEngine>> = Vec::with_capacity(shards);
    let mut bits: Vec<Box<dyn MicroblogEngine>> = Vec::with_capacity(shards);
    for (i, part) in parts.iter().enumerate() {
        let files = part
            .write_csv(&dir.join(format!("shard-{i}")))
            .map_err(|e| CoreError::Ingest(e.to_string()))?;
        let (arbor, bit, _) = build_engines(&files)?;
        arbors.push(Box::new(arbor));
        bits.push(Box::new(bit));
    }
    Ok((ShardedEngine::new(arbors), ShardedEngine::new(bits)))
}

/// Like [`build_sharded_engines`], but wraps every shard of both backends
/// in a [`ChaosEngine`] under `plan` (salted by shard index, so shards
/// fault independently), and configures the sharded facades with `policy`
/// and `mode`. This is the chaos-serving test/bench entry point: same
/// partitions, same data, faults injected at the shard boundary. Scatter
/// execution defaults to parallel here too — fault decisions are pure per
/// `(shard, method, args, attempt)`, so chaos digests match the sequential
/// oracle.
pub fn build_chaos_sharded_engines(
    dataset: &Dataset,
    dir: &Path,
    shards: usize,
    plan: FaultPlan,
    policy: RetryPolicy,
    mode: DegradationMode,
) -> Result<(ShardedEngine, ShardedEngine)> {
    let parts = partition_dataset(dataset, shards);
    let mut arbors: Vec<Box<dyn MicroblogEngine>> = Vec::with_capacity(shards);
    let mut bits: Vec<Box<dyn MicroblogEngine>> = Vec::with_capacity(shards);
    for (i, part) in parts.iter().enumerate() {
        let files = part
            .write_csv(&dir.join(format!("shard-{i}")))
            .map_err(|e| CoreError::Ingest(e.to_string()))?;
        let (arbor, bit, _) = build_engines(&files)?;
        arbors.push(Box::new(ChaosEngine::new(Box::new(arbor), plan, i as u64)));
        bits.push(Box::new(ChaosEngine::new(Box::new(bit), plan, i as u64)));
    }
    Ok((
        ShardedEngine::new(arbors).with_policy(policy).with_degradation(mode),
        ShardedEngine::new(bits).with_policy(policy).with_degradation(mode),
    ))
}

/// Like [`build_sharded_engines`], but every shard slot is an R-way
/// [`crate::shard`] replica group (DESIGN.md §4i): each partition's CSV
/// bundle is written once and ingested `replicas` times per backend, so
/// all replicas of a shard hold identical data. With `replicas = 1` this
/// is exactly [`build_sharded_engines`] — same name, same digests.
pub fn build_replicated_engines(
    dataset: &Dataset,
    dir: &Path,
    shards: usize,
    replicas: usize,
) -> Result<(ShardedEngine, ShardedEngine)> {
    let parts = partition_dataset(dataset, shards);
    let mut arbors: Vec<Vec<Box<dyn MicroblogEngine>>> = Vec::with_capacity(shards);
    let mut bits: Vec<Vec<Box<dyn MicroblogEngine>>> = Vec::with_capacity(shards);
    for (i, part) in parts.iter().enumerate() {
        let files = part
            .write_csv(&dir.join(format!("shard-{i}")))
            .map_err(|e| CoreError::Ingest(e.to_string()))?;
        let mut arbor_group: Vec<Box<dyn MicroblogEngine>> = Vec::with_capacity(replicas);
        let mut bit_group: Vec<Box<dyn MicroblogEngine>> = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let (arbor, bit, _) = build_engines(&files)?;
            arbor_group.push(Box::new(arbor));
            bit_group.push(Box::new(bit));
        }
        arbors.push(arbor_group);
        bits.push(bit_group);
    }
    Ok((ShardedEngine::new_replicated(arbors), ShardedEngine::new_replicated(bits)))
}

/// Like [`build_replicated_engines`], but wraps every replica of every
/// shard in a [`ChaosEngine`] under the plan `plan_for(shard, replica)`
/// returns, salted by the flat replica index `shard * replicas + replica`
/// — at R = 1 that reduces to the shard index, so an R = 1 chaos build
/// faults **identically** to [`build_chaos_sharded_engines`]. The
/// per-slot plan closure is what the permanent-fault tests use to kill
/// one replica of every shard while its groupmates stay clean.
pub fn build_chaos_replicated_engines(
    dataset: &Dataset,
    dir: &Path,
    shards: usize,
    replicas: usize,
    plan_for: impl Fn(usize, usize) -> FaultPlan,
    policy: RetryPolicy,
    mode: DegradationMode,
) -> Result<(ShardedEngine, ShardedEngine)> {
    let parts = partition_dataset(dataset, shards);
    let mut arbors: Vec<Vec<Box<dyn MicroblogEngine>>> = Vec::with_capacity(shards);
    let mut bits: Vec<Vec<Box<dyn MicroblogEngine>>> = Vec::with_capacity(shards);
    for (i, part) in parts.iter().enumerate() {
        let files = part
            .write_csv(&dir.join(format!("shard-{i}")))
            .map_err(|e| CoreError::Ingest(e.to_string()))?;
        let mut arbor_group: Vec<Box<dyn MicroblogEngine>> = Vec::with_capacity(replicas);
        let mut bit_group: Vec<Box<dyn MicroblogEngine>> = Vec::with_capacity(replicas);
        for r in 0..replicas {
            let (arbor, bit, _) = build_engines(&files)?;
            let plan = plan_for(i, r);
            let salt = (i * replicas + r) as u64;
            arbor_group.push(Box::new(ChaosEngine::new(Box::new(arbor), plan, salt)));
            bit_group.push(Box::new(ChaosEngine::new(Box::new(bit), plan, salt)));
        }
        arbors.push(arbor_group);
        bits.push(bit_group);
    }
    Ok((
        ShardedEngine::new_replicated(arbors).with_policy(policy).with_degradation(mode),
        ShardedEngine::new_replicated(bits).with_policy(policy).with_degradation(mode),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use micrograph_datagen::{generate, GenConfig};

    fn bundle(tag: &str, config: &GenConfig) -> CsvFiles {
        let dir = std::env::temp_dir().join(format!("core-ingest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        generate(config).write_csv(&dir).unwrap()
    }

    #[test]
    fn both_engines_ingest_the_same_bundle() {
        let files = bundle("both", &GenConfig::unit());
        let (arbor, bit, reports) = build_engines(&files).unwrap();
        assert_eq!(reports.arbor.nodes, reports.bit.nodes);
        assert_eq!(reports.arbor.edges, reports.bit.edges);
        assert!(reports.arbor.nodes > 0);
        // Spot-check one user exists in both.
        use crate::engine::MicroblogEngine;
        let a = arbor.followees(1).unwrap();
        let b = bit.followees(1).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&files.dir).unwrap();
    }

    #[test]
    fn script_text_roundtrips() {
        let files = bundle("script", &GenConfig::unit());
        let script = bit_script(&files, LoadConfig::default());
        let text = bit_script_text(&script);
        let parsed = bitgraph::loader::parse_script(&text).unwrap();
        assert_eq!(parsed, script);
        std::fs::remove_dir_all(&files.dir).unwrap();
    }

    #[test]
    fn sharded_engines_agree_with_unsharded_spot_checks() {
        let dir = std::env::temp_dir().join(format!("core-ingest-sharded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dataset = generate(&GenConfig::unit());
        let files = dataset.write_csv(&dir).unwrap();
        let (arbor, _, _) = build_engines(&files).unwrap();
        let (sa, sb) = build_sharded_engines(&dataset, &dir.join("parts"), 2).unwrap();
        assert_eq!(sa.shard_count(), 2);
        assert!(sa.name().contains("arbordb"), "{}", sa.name());
        assert!(sb.name().contains("bitgraph"), "{}", sb.name());
        for uid in [1i64, 5, 17] {
            assert_eq!(sa.followees(uid).unwrap(), arbor.followees(uid).unwrap());
            assert_eq!(sb.followees(uid).unwrap(), arbor.followees(uid).unwrap());
            assert_eq!(sa.followee_tweets(uid).unwrap(), arbor.followee_tweets(uid).unwrap());
            assert_eq!(sb.followee_tweets(uid).unwrap(), arbor.followee_tweets(uid).unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retweets_included_when_present() {
        let mut cfg = GenConfig::unit();
        cfg.with_retweets = true;
        cfg.retweet_fraction = 0.9;
        let files = bundle("rt", &cfg);
        assert!(files.retweets.is_some());
        let source = arbor_source(&files);
        assert_eq!(source.rels.len(), 5);
        let script = bit_script(&files, LoadConfig::default());
        assert_eq!(script.edges.len(), 5);
        let (arbor, bit, _) = build_engines(&files).unwrap();
        use crate::engine::MicroblogEngine;
        // Some tweet has a retweet in both engines.
        let total_rt: u64 = (1..=40).map(|t| arbor.retweet_count(t).unwrap()).sum();
        let total_rt_bit: u64 = (1..=40).map(|t| bit.retweet_count(t).unwrap()).sum();
        assert_eq!(total_rt, total_rt_bit);
        assert!(total_rt > 0);
        std::fs::remove_dir_all(&files.dir).unwrap();
    }
}
