//! Offline workspace shim for the `criterion` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace pins `criterion` to this local path crate (DESIGN.md §5). It
//! keeps criterion's API shape for the subset the benches use — groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`,
//! `iter`/`iter_with_setup`, `criterion_group!`/`criterion_main!` — but
//! replaces the statistics engine with a plain wall-clock sampler that
//! reports min/median/mean per benchmark on stdout. Good enough to compare
//! engine variants locally; not a statistical framework.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as in criterion.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = run_samples(self.sample_size, &mut f);
        report(&id.to_string(), &samples, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and optional throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = run_samples(self.criterion.sample_size, &mut f);
        report(&format!("{}/{}", self.name, id), &samples, self.throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = run_samples(self.criterion.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        report(&format!("{}/{}", self.name, id), &samples, self.throughput);
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Names a benchmark within a group, as `function/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { text: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter as the name.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work per iteration, for ops/sec reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(std_black_box(out));
    }

    /// Times `routine` on a fresh untimed `setup()` value per sample.
    pub fn iter_with_setup<S, O, Setup: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
    ) {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(std_black_box(out));
    }
}

fn run_samples<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Vec<Duration> {
    // One warmup call outside the recorded set.
    let mut warm = Bencher { elapsed: Duration::ZERO, iters: 0 };
    f(&mut warm);
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        let per_iter = if b.iters > 0 { b.elapsed / (b.iters as u32) } else { Duration::ZERO };
        samples.push(per_iter);
    }
    samples
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / (sorted.len() as u32);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench: {name:<50} min {min:>12?}  median {median:>12?}  mean {mean:>12?}{rate}"
    );
}

/// Declares a benchmark group entry point, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter_with_setup(|| vec![n; 32], |v| v.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn api_surface_runs() {
        let mut c = Criterion::default().sample_size(3);
        bench_demo(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
