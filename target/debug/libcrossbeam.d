/root/repo/target/debug/libcrossbeam.rlib: /root/repo/crates/crossbeam/src/lib.rs
