/root/repo/target/debug/deps/micrograph_integration-93dd67fff126324b.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/micrograph_integration-93dd67fff126324b: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
