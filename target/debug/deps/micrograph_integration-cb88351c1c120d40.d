/root/repo/target/debug/deps/micrograph_integration-cb88351c1c120d40.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmicrograph_integration-cb88351c1c120d40.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
