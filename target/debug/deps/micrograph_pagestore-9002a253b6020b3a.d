/root/repo/target/debug/deps/micrograph_pagestore-9002a253b6020b3a.d: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libmicrograph_pagestore-9002a253b6020b3a.rmeta: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs Cargo.toml

crates/pagestore/src/lib.rs:
crates/pagestore/src/backend.rs:
crates/pagestore/src/buffer.rs:
crates/pagestore/src/page.rs:
crates/pagestore/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
