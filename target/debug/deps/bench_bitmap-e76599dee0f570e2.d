/root/repo/target/debug/deps/bench_bitmap-e76599dee0f570e2.d: crates/bench/benches/bench_bitmap.rs Cargo.toml

/root/repo/target/debug/deps/libbench_bitmap-e76599dee0f570e2.rmeta: crates/bench/benches/bench_bitmap.rs Cargo.toml

crates/bench/benches/bench_bitmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
