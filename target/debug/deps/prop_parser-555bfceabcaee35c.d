/root/repo/target/debug/deps/prop_parser-555bfceabcaee35c.d: crates/arborql/tests/prop_parser.rs Cargo.toml

/root/repo/target/debug/deps/libprop_parser-555bfceabcaee35c.rmeta: crates/arborql/tests/prop_parser.rs Cargo.toml

crates/arborql/tests/prop_parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
