/root/repo/target/debug/deps/micrograph_pagestore-893442b4c2133695.d: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs

/root/repo/target/debug/deps/micrograph_pagestore-893442b4c2133695: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs

crates/pagestore/src/lib.rs:
crates/pagestore/src/backend.rs:
crates/pagestore/src/buffer.rs:
crates/pagestore/src/page.rs:
crates/pagestore/src/wal.rs:
