/root/repo/target/debug/deps/ql_end_to_end-19fc86c8cc7af411.d: crates/arborql/tests/ql_end_to_end.rs

/root/repo/target/debug/deps/ql_end_to_end-19fc86c8cc7af411: crates/arborql/tests/ql_end_to_end.rs

crates/arborql/tests/ql_end_to_end.rs:
