/root/repo/target/debug/deps/plan_cache-8c0cd0ad78d81725.d: crates/integration/../../tests/plan_cache.rs Cargo.toml

/root/repo/target/debug/deps/libplan_cache-8c0cd0ad78d81725.rmeta: crates/integration/../../tests/plan_cache.rs Cargo.toml

crates/integration/../../tests/plan_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
