/root/repo/target/debug/deps/micrograph_core-752bc8c30dadf8f6.d: crates/core/src/lib.rs crates/core/src/adapters/mod.rs crates/core/src/adapters/arbor.rs crates/core/src/adapters/bit.rs crates/core/src/compose.rs crates/core/src/engine.rs crates/core/src/fault.rs crates/core/src/ingest.rs crates/core/src/runner.rs crates/core/src/schema.rs crates/core/src/serve.rs crates/core/src/shard.rs crates/core/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libmicrograph_core-752bc8c30dadf8f6.rmeta: crates/core/src/lib.rs crates/core/src/adapters/mod.rs crates/core/src/adapters/arbor.rs crates/core/src/adapters/bit.rs crates/core/src/compose.rs crates/core/src/engine.rs crates/core/src/fault.rs crates/core/src/ingest.rs crates/core/src/runner.rs crates/core/src/schema.rs crates/core/src/serve.rs crates/core/src/shard.rs crates/core/src/workload.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adapters/mod.rs:
crates/core/src/adapters/arbor.rs:
crates/core/src/adapters/bit.rs:
crates/core/src/compose.rs:
crates/core/src/engine.rs:
crates/core/src/fault.rs:
crates/core/src/ingest.rs:
crates/core/src/runner.rs:
crates/core/src/schema.rs:
crates/core/src/serve.rs:
crates/core/src/shard.rs:
crates/core/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
