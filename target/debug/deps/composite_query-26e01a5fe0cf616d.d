/root/repo/target/debug/deps/composite_query-26e01a5fe0cf616d.d: crates/integration/../../tests/composite_query.rs Cargo.toml

/root/repo/target/debug/deps/libcomposite_query-26e01a5fe0cf616d.rmeta: crates/integration/../../tests/composite_query.rs Cargo.toml

crates/integration/../../tests/composite_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
