/root/repo/target/debug/deps/arbor_ql-2673b319bb62d971.d: crates/arborql/src/lib.rs crates/arborql/src/ast.rs crates/arborql/src/engine.rs crates/arborql/src/exec.rs crates/arborql/src/parser.rs crates/arborql/src/plan.rs crates/arborql/src/token.rs

/root/repo/target/debug/deps/libarbor_ql-2673b319bb62d971.rlib: crates/arborql/src/lib.rs crates/arborql/src/ast.rs crates/arborql/src/engine.rs crates/arborql/src/exec.rs crates/arborql/src/parser.rs crates/arborql/src/plan.rs crates/arborql/src/token.rs

/root/repo/target/debug/deps/libarbor_ql-2673b319bb62d971.rmeta: crates/arborql/src/lib.rs crates/arborql/src/ast.rs crates/arborql/src/engine.rs crates/arborql/src/exec.rs crates/arborql/src/parser.rs crates/arborql/src/plan.rs crates/arborql/src/token.rs

crates/arborql/src/lib.rs:
crates/arborql/src/ast.rs:
crates/arborql/src/engine.rs:
crates/arborql/src/exec.rs:
crates/arborql/src/parser.rs:
crates/arborql/src/plan.rs:
crates/arborql/src/token.rs:
