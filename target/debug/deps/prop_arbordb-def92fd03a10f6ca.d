/root/repo/target/debug/deps/prop_arbordb-def92fd03a10f6ca.d: crates/arbordb/tests/prop_arbordb.rs Cargo.toml

/root/repo/target/debug/deps/libprop_arbordb-def92fd03a10f6ca.rmeta: crates/arbordb/tests/prop_arbordb.rs Cargo.toml

crates/arbordb/tests/prop_arbordb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
