/root/repo/target/debug/deps/prop_bitgraph-0853bd3cc74bd0c5.d: crates/bitgraph/tests/prop_bitgraph.rs Cargo.toml

/root/repo/target/debug/deps/libprop_bitgraph-0853bd3cc74bd0c5.rmeta: crates/bitgraph/tests/prop_bitgraph.rs Cargo.toml

crates/bitgraph/tests/prop_bitgraph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
