/root/repo/target/debug/deps/end_to_end-0786314c32e9863c.d: crates/integration/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-0786314c32e9863c.rmeta: crates/integration/../../tests/end_to_end.rs Cargo.toml

crates/integration/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
