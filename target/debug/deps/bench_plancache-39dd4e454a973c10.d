/root/repo/target/debug/deps/bench_plancache-39dd4e454a973c10.d: crates/bench/benches/bench_plancache.rs Cargo.toml

/root/repo/target/debug/deps/libbench_plancache-39dd4e454a973c10.rmeta: crates/bench/benches/bench_plancache.rs Cargo.toml

crates/bench/benches/bench_plancache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
