/root/repo/target/debug/deps/ql_end_to_end-4a15cdb4cc71d8d2.d: crates/arborql/tests/ql_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libql_end_to_end-4a15cdb4cc71d8d2.rmeta: crates/arborql/tests/ql_end_to_end.rs Cargo.toml

crates/arborql/tests/ql_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
