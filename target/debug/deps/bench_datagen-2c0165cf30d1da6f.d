/root/repo/target/debug/deps/bench_datagen-2c0165cf30d1da6f.d: crates/bench/benches/bench_datagen.rs Cargo.toml

/root/repo/target/debug/deps/libbench_datagen-2c0165cf30d1da6f.rmeta: crates/bench/benches/bench_datagen.rs Cargo.toml

crates/bench/benches/bench_datagen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
