/root/repo/target/debug/deps/micrograph_datagen-92a2a7ecfd5589ba.d: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/gen.rs crates/datagen/src/stream.rs crates/datagen/src/text.rs

/root/repo/target/debug/deps/libmicrograph_datagen-92a2a7ecfd5589ba.rlib: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/gen.rs crates/datagen/src/stream.rs crates/datagen/src/text.rs

/root/repo/target/debug/deps/libmicrograph_datagen-92a2a7ecfd5589ba.rmeta: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/gen.rs crates/datagen/src/stream.rs crates/datagen/src/text.rs

crates/datagen/src/lib.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/gen.rs:
crates/datagen/src/stream.rs:
crates/datagen/src/text.rs:
