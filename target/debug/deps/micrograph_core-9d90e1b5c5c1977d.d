/root/repo/target/debug/deps/micrograph_core-9d90e1b5c5c1977d.d: crates/core/src/lib.rs crates/core/src/adapters/mod.rs crates/core/src/adapters/arbor.rs crates/core/src/adapters/bit.rs crates/core/src/compose.rs crates/core/src/engine.rs crates/core/src/fault.rs crates/core/src/ingest.rs crates/core/src/runner.rs crates/core/src/schema.rs crates/core/src/serve.rs crates/core/src/shard.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/micrograph_core-9d90e1b5c5c1977d: crates/core/src/lib.rs crates/core/src/adapters/mod.rs crates/core/src/adapters/arbor.rs crates/core/src/adapters/bit.rs crates/core/src/compose.rs crates/core/src/engine.rs crates/core/src/fault.rs crates/core/src/ingest.rs crates/core/src/runner.rs crates/core/src/schema.rs crates/core/src/serve.rs crates/core/src/shard.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/adapters/mod.rs:
crates/core/src/adapters/arbor.rs:
crates/core/src/adapters/bit.rs:
crates/core/src/compose.rs:
crates/core/src/engine.rs:
crates/core/src/fault.rs:
crates/core/src/ingest.rs:
crates/core/src/runner.rs:
crates/core/src/schema.rs:
crates/core/src/serve.rs:
crates/core/src/shard.rs:
crates/core/src/workload.rs:
