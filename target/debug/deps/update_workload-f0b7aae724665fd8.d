/root/repo/target/debug/deps/update_workload-f0b7aae724665fd8.d: crates/integration/../../tests/update_workload.rs

/root/repo/target/debug/deps/update_workload-f0b7aae724665fd8: crates/integration/../../tests/update_workload.rs

crates/integration/../../tests/update_workload.rs:
