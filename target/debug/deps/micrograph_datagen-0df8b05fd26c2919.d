/root/repo/target/debug/deps/micrograph_datagen-0df8b05fd26c2919.d: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/gen.rs crates/datagen/src/stream.rs crates/datagen/src/text.rs

/root/repo/target/debug/deps/micrograph_datagen-0df8b05fd26c2919: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/gen.rs crates/datagen/src/stream.rs crates/datagen/src/text.rs

crates/datagen/src/lib.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/gen.rs:
crates/datagen/src/stream.rs:
crates/datagen/src/text.rs:
