/root/repo/target/debug/deps/chaos_serving-5b9f46e5c5956d80.d: crates/integration/../../tests/chaos_serving.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_serving-5b9f46e5c5956d80.rmeta: crates/integration/../../tests/chaos_serving.rs Cargo.toml

crates/integration/../../tests/chaos_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
