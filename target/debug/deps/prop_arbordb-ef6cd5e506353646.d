/root/repo/target/debug/deps/prop_arbordb-ef6cd5e506353646.d: crates/arbordb/tests/prop_arbordb.rs

/root/repo/target/debug/deps/prop_arbordb-ef6cd5e506353646: crates/arbordb/tests/prop_arbordb.rs

crates/arbordb/tests/prop_arbordb.rs:
