/root/repo/target/debug/deps/micrograph_bench-244cc9c57aa7e71e.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libmicrograph_bench-244cc9c57aa7e71e.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/fixture.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
