/root/repo/target/debug/deps/bitgraph-3ccac2d7ce2ccd95.d: crates/bitgraph/src/lib.rs crates/bitgraph/src/bitmap.rs crates/bitgraph/src/extent.rs crates/bitgraph/src/graph.rs crates/bitgraph/src/loader.rs crates/bitgraph/src/objects.rs crates/bitgraph/src/traversal.rs Cargo.toml

/root/repo/target/debug/deps/libbitgraph-3ccac2d7ce2ccd95.rmeta: crates/bitgraph/src/lib.rs crates/bitgraph/src/bitmap.rs crates/bitgraph/src/extent.rs crates/bitgraph/src/graph.rs crates/bitgraph/src/loader.rs crates/bitgraph/src/objects.rs crates/bitgraph/src/traversal.rs Cargo.toml

crates/bitgraph/src/lib.rs:
crates/bitgraph/src/bitmap.rs:
crates/bitgraph/src/extent.rs:
crates/bitgraph/src/graph.rs:
crates/bitgraph/src/loader.rs:
crates/bitgraph/src/objects.rs:
crates/bitgraph/src/traversal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
