/root/repo/target/debug/deps/chaos_serving-e0964c656b7b9aa0.d: crates/integration/../../tests/chaos_serving.rs

/root/repo/target/debug/deps/chaos_serving-e0964c656b7b9aa0: crates/integration/../../tests/chaos_serving.rs

crates/integration/../../tests/chaos_serving.rs:
