/root/repo/target/debug/deps/ingest_pipeline-1cc332bb6daa3034.d: crates/integration/../../tests/ingest_pipeline.rs

/root/repo/target/debug/deps/ingest_pipeline-1cc332bb6daa3034: crates/integration/../../tests/ingest_pipeline.rs

crates/integration/../../tests/ingest_pipeline.rs:
