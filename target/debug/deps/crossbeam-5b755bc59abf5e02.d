/root/repo/target/debug/deps/crossbeam-5b755bc59abf5e02.d: crates/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-5b755bc59abf5e02.rmeta: crates/crossbeam/src/lib.rs Cargo.toml

crates/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
