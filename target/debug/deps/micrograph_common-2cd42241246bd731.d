/root/repo/target/debug/deps/micrograph_common-2cd42241246bd731.d: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libmicrograph_common-2cd42241246bd731.rmeta: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/csvio.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/tmpdir.rs:
crates/common/src/topn.rs:
crates/common/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
