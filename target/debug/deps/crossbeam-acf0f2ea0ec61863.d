/root/repo/target/debug/deps/crossbeam-acf0f2ea0ec61863.d: crates/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-acf0f2ea0ec61863: crates/crossbeam/src/lib.rs

crates/crossbeam/src/lib.rs:
