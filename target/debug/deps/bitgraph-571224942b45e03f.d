/root/repo/target/debug/deps/bitgraph-571224942b45e03f.d: crates/bitgraph/src/lib.rs crates/bitgraph/src/bitmap.rs crates/bitgraph/src/extent.rs crates/bitgraph/src/graph.rs crates/bitgraph/src/loader.rs crates/bitgraph/src/objects.rs crates/bitgraph/src/traversal.rs

/root/repo/target/debug/deps/bitgraph-571224942b45e03f: crates/bitgraph/src/lib.rs crates/bitgraph/src/bitmap.rs crates/bitgraph/src/extent.rs crates/bitgraph/src/graph.rs crates/bitgraph/src/loader.rs crates/bitgraph/src/objects.rs crates/bitgraph/src/traversal.rs

crates/bitgraph/src/lib.rs:
crates/bitgraph/src/bitmap.rs:
crates/bitgraph/src/extent.rs:
crates/bitgraph/src/graph.rs:
crates/bitgraph/src/loader.rs:
crates/bitgraph/src/objects.rs:
crates/bitgraph/src/traversal.rs:
