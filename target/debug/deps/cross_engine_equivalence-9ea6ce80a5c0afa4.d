/root/repo/target/debug/deps/cross_engine_equivalence-9ea6ce80a5c0afa4.d: crates/integration/../../tests/cross_engine_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libcross_engine_equivalence-9ea6ce80a5c0afa4.rmeta: crates/integration/../../tests/cross_engine_equivalence.rs Cargo.toml

crates/integration/../../tests/cross_engine_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
