/root/repo/target/debug/deps/micrograph_bench-d88142fa7727feba.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libmicrograph_bench-d88142fa7727feba.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/fixture.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
