/root/repo/target/debug/deps/dense_groups-e3ad78a028931fa2.d: crates/arbordb/tests/dense_groups.rs

/root/repo/target/debug/deps/dense_groups-e3ad78a028931fa2: crates/arbordb/tests/dense_groups.rs

crates/arbordb/tests/dense_groups.rs:
