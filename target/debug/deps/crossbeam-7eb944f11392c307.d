/root/repo/target/debug/deps/crossbeam-7eb944f11392c307.d: crates/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-7eb944f11392c307.rlib: crates/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-7eb944f11392c307.rmeta: crates/crossbeam/src/lib.rs

crates/crossbeam/src/lib.rs:
