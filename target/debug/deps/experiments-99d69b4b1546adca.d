/root/repo/target/debug/deps/experiments-99d69b4b1546adca.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-99d69b4b1546adca: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
