/root/repo/target/debug/deps/micrograph_datagen-3a3b1ad5e7cd6f0b.d: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/gen.rs crates/datagen/src/stream.rs crates/datagen/src/text.rs Cargo.toml

/root/repo/target/debug/deps/libmicrograph_datagen-3a3b1ad5e7cd6f0b.rmeta: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/gen.rs crates/datagen/src/stream.rs crates/datagen/src/text.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/gen.rs:
crates/datagen/src/stream.rs:
crates/datagen/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
