/root/repo/target/debug/deps/prop_bitgraph-7f934e404195fe0a.d: crates/bitgraph/tests/prop_bitgraph.rs

/root/repo/target/debug/deps/prop_bitgraph-7f934e404195fe0a: crates/bitgraph/tests/prop_bitgraph.rs

crates/bitgraph/tests/prop_bitgraph.rs:
