/root/repo/target/debug/deps/micrograph_bench-a0bede6dc9d15e56.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/micrograph_bench-a0bede6dc9d15e56: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/fixture.rs:
crates/bench/src/report.rs:
