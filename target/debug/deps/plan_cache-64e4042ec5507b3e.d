/root/repo/target/debug/deps/plan_cache-64e4042ec5507b3e.d: crates/integration/../../tests/plan_cache.rs

/root/repo/target/debug/deps/plan_cache-64e4042ec5507b3e: crates/integration/../../tests/plan_cache.rs

crates/integration/../../tests/plan_cache.rs:
