/root/repo/target/debug/deps/prop_ql-8897fb38615d1f3b.d: crates/arborql/tests/prop_ql.rs Cargo.toml

/root/repo/target/debug/deps/libprop_ql-8897fb38615d1f3b.rmeta: crates/arborql/tests/prop_ql.rs Cargo.toml

crates/arborql/tests/prop_ql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
