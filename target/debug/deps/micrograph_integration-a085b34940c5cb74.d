/root/repo/target/debug/deps/micrograph_integration-a085b34940c5cb74.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libmicrograph_integration-a085b34940c5cb74.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libmicrograph_integration-a085b34940c5cb74.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
