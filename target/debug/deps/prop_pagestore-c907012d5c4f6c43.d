/root/repo/target/debug/deps/prop_pagestore-c907012d5c4f6c43.d: crates/pagestore/tests/prop_pagestore.rs Cargo.toml

/root/repo/target/debug/deps/libprop_pagestore-c907012d5c4f6c43.rmeta: crates/pagestore/tests/prop_pagestore.rs Cargo.toml

crates/pagestore/tests/prop_pagestore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
