/root/repo/target/debug/deps/prop_common-e08b3132af1ebef7.d: crates/common/tests/prop_common.rs Cargo.toml

/root/repo/target/debug/deps/libprop_common-e08b3132af1ebef7.rmeta: crates/common/tests/prop_common.rs Cargo.toml

crates/common/tests/prop_common.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
