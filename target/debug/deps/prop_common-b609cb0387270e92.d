/root/repo/target/debug/deps/prop_common-b609cb0387270e92.d: crates/common/tests/prop_common.rs

/root/repo/target/debug/deps/prop_common-b609cb0387270e92: crates/common/tests/prop_common.rs

crates/common/tests/prop_common.rs:
