/root/repo/target/debug/deps/dense_groups-ec69b59cbaf9c869.d: crates/arbordb/tests/dense_groups.rs Cargo.toml

/root/repo/target/debug/deps/libdense_groups-ec69b59cbaf9c869.rmeta: crates/arbordb/tests/dense_groups.rs Cargo.toml

crates/arbordb/tests/dense_groups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
