/root/repo/target/debug/deps/experiments-807235dd6b795469.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-807235dd6b795469.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
