/root/repo/target/debug/deps/ingest_pipeline-7cce8bccb4d49ea0.d: crates/integration/../../tests/ingest_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libingest_pipeline-7cce8bccb4d49ea0.rmeta: crates/integration/../../tests/ingest_pipeline.rs Cargo.toml

crates/integration/../../tests/ingest_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
