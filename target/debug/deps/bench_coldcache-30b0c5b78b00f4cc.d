/root/repo/target/debug/deps/bench_coldcache-30b0c5b78b00f4cc.d: crates/bench/benches/bench_coldcache.rs Cargo.toml

/root/repo/target/debug/deps/libbench_coldcache-30b0c5b78b00f4cc.rmeta: crates/bench/benches/bench_coldcache.rs Cargo.toml

crates/bench/benches/bench_coldcache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
