/root/repo/target/debug/deps/end_to_end-c9672ac5c93a05d7.d: crates/integration/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c9672ac5c93a05d7: crates/integration/../../tests/end_to_end.rs

crates/integration/../../tests/end_to_end.rs:
