/root/repo/target/debug/deps/bitgraph-6aad1eff7cd1c802.d: crates/bitgraph/src/lib.rs crates/bitgraph/src/bitmap.rs crates/bitgraph/src/extent.rs crates/bitgraph/src/graph.rs crates/bitgraph/src/loader.rs crates/bitgraph/src/objects.rs crates/bitgraph/src/traversal.rs

/root/repo/target/debug/deps/libbitgraph-6aad1eff7cd1c802.rlib: crates/bitgraph/src/lib.rs crates/bitgraph/src/bitmap.rs crates/bitgraph/src/extent.rs crates/bitgraph/src/graph.rs crates/bitgraph/src/loader.rs crates/bitgraph/src/objects.rs crates/bitgraph/src/traversal.rs

/root/repo/target/debug/deps/libbitgraph-6aad1eff7cd1c802.rmeta: crates/bitgraph/src/lib.rs crates/bitgraph/src/bitmap.rs crates/bitgraph/src/extent.rs crates/bitgraph/src/graph.rs crates/bitgraph/src/loader.rs crates/bitgraph/src/objects.rs crates/bitgraph/src/traversal.rs

crates/bitgraph/src/lib.rs:
crates/bitgraph/src/bitmap.rs:
crates/bitgraph/src/extent.rs:
crates/bitgraph/src/graph.rs:
crates/bitgraph/src/loader.rs:
crates/bitgraph/src/objects.rs:
crates/bitgraph/src/traversal.rs:
