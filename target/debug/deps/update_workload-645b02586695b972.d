/root/repo/target/debug/deps/update_workload-645b02586695b972.d: crates/integration/../../tests/update_workload.rs Cargo.toml

/root/repo/target/debug/deps/libupdate_workload-645b02586695b972.rmeta: crates/integration/../../tests/update_workload.rs Cargo.toml

crates/integration/../../tests/update_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
