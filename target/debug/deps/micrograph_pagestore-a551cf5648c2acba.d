/root/repo/target/debug/deps/micrograph_pagestore-a551cf5648c2acba.d: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libmicrograph_pagestore-a551cf5648c2acba.rmeta: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs Cargo.toml

crates/pagestore/src/lib.rs:
crates/pagestore/src/backend.rs:
crates/pagestore/src/buffer.rs:
crates/pagestore/src/page.rs:
crates/pagestore/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
