/root/repo/target/debug/deps/prop_parser-8ef601d379154445.d: crates/arborql/tests/prop_parser.rs

/root/repo/target/debug/deps/prop_parser-8ef601d379154445: crates/arborql/tests/prop_parser.rs

crates/arborql/tests/prop_parser.rs:
