/root/repo/target/debug/deps/prop_ql-1ba55d481d9921e1.d: crates/arborql/tests/prop_ql.rs

/root/repo/target/debug/deps/prop_ql-1ba55d481d9921e1: crates/arborql/tests/prop_ql.rs

crates/arborql/tests/prop_ql.rs:
