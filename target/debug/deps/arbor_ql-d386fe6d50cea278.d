/root/repo/target/debug/deps/arbor_ql-d386fe6d50cea278.d: crates/arborql/src/lib.rs crates/arborql/src/ast.rs crates/arborql/src/engine.rs crates/arborql/src/exec.rs crates/arborql/src/parser.rs crates/arborql/src/plan.rs crates/arborql/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libarbor_ql-d386fe6d50cea278.rmeta: crates/arborql/src/lib.rs crates/arborql/src/ast.rs crates/arborql/src/engine.rs crates/arborql/src/exec.rs crates/arborql/src/parser.rs crates/arborql/src/plan.rs crates/arborql/src/token.rs Cargo.toml

crates/arborql/src/lib.rs:
crates/arborql/src/ast.rs:
crates/arborql/src/engine.rs:
crates/arborql/src/exec.rs:
crates/arborql/src/parser.rs:
crates/arborql/src/plan.rs:
crates/arborql/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
