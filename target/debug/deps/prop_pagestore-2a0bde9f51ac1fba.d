/root/repo/target/debug/deps/prop_pagestore-2a0bde9f51ac1fba.d: crates/pagestore/tests/prop_pagestore.rs

/root/repo/target/debug/deps/prop_pagestore-2a0bde9f51ac1fba: crates/pagestore/tests/prop_pagestore.rs

crates/pagestore/tests/prop_pagestore.rs:
