/root/repo/target/debug/deps/recovery-368e7fc35c643cd6.d: crates/integration/../../tests/recovery.rs

/root/repo/target/debug/deps/recovery-368e7fc35c643cd6: crates/integration/../../tests/recovery.rs

crates/integration/../../tests/recovery.rs:
