/root/repo/target/debug/deps/bench_serving-91b16a54409db0db.d: crates/bench/benches/bench_serving.rs Cargo.toml

/root/repo/target/debug/deps/libbench_serving-91b16a54409db0db.rmeta: crates/bench/benches/bench_serving.rs Cargo.toml

crates/bench/benches/bench_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
