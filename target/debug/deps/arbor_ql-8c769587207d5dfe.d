/root/repo/target/debug/deps/arbor_ql-8c769587207d5dfe.d: crates/arborql/src/lib.rs crates/arborql/src/ast.rs crates/arborql/src/engine.rs crates/arborql/src/exec.rs crates/arborql/src/parser.rs crates/arborql/src/plan.rs crates/arborql/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libarbor_ql-8c769587207d5dfe.rmeta: crates/arborql/src/lib.rs crates/arborql/src/ast.rs crates/arborql/src/engine.rs crates/arborql/src/exec.rs crates/arborql/src/parser.rs crates/arborql/src/plan.rs crates/arborql/src/token.rs Cargo.toml

crates/arborql/src/lib.rs:
crates/arborql/src/ast.rs:
crates/arborql/src/engine.rs:
crates/arborql/src/exec.rs:
crates/arborql/src/parser.rs:
crates/arborql/src/plan.rs:
crates/arborql/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
