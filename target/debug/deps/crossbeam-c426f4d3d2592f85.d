/root/repo/target/debug/deps/crossbeam-c426f4d3d2592f85.d: crates/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-c426f4d3d2592f85.rmeta: crates/crossbeam/src/lib.rs Cargo.toml

crates/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
