/root/repo/target/debug/deps/experiments-645684263df36341.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-645684263df36341.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
