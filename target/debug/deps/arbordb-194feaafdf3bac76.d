/root/repo/target/debug/deps/arbordb-194feaafdf3bac76.d: crates/arbordb/src/lib.rs crates/arbordb/src/db.rs crates/arbordb/src/dict.rs crates/arbordb/src/error.rs crates/arbordb/src/group.rs crates/arbordb/src/import.rs crates/arbordb/src/index.rs crates/arbordb/src/records.rs crates/arbordb/src/store/mod.rs crates/arbordb/src/traversal.rs crates/arbordb/src/txn.rs Cargo.toml

/root/repo/target/debug/deps/libarbordb-194feaafdf3bac76.rmeta: crates/arbordb/src/lib.rs crates/arbordb/src/db.rs crates/arbordb/src/dict.rs crates/arbordb/src/error.rs crates/arbordb/src/group.rs crates/arbordb/src/import.rs crates/arbordb/src/index.rs crates/arbordb/src/records.rs crates/arbordb/src/store/mod.rs crates/arbordb/src/traversal.rs crates/arbordb/src/txn.rs Cargo.toml

crates/arbordb/src/lib.rs:
crates/arbordb/src/db.rs:
crates/arbordb/src/dict.rs:
crates/arbordb/src/error.rs:
crates/arbordb/src/group.rs:
crates/arbordb/src/import.rs:
crates/arbordb/src/index.rs:
crates/arbordb/src/records.rs:
crates/arbordb/src/store/mod.rs:
crates/arbordb/src/traversal.rs:
crates/arbordb/src/txn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
