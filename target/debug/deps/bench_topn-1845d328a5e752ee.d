/root/repo/target/debug/deps/bench_topn-1845d328a5e752ee.d: crates/bench/benches/bench_topn.rs Cargo.toml

/root/repo/target/debug/deps/libbench_topn-1845d328a5e752ee.rmeta: crates/bench/benches/bench_topn.rs Cargo.toml

crates/bench/benches/bench_topn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
