/root/repo/target/debug/deps/micrograph_common-28c8593e913d8519.d: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libmicrograph_common-28c8593e913d8519.rlib: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libmicrograph_common-28c8593e913d8519.rmeta: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/csvio.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/tmpdir.rs:
crates/common/src/topn.rs:
crates/common/src/value.rs:
