/root/repo/target/debug/deps/micrograph_bench-8b3d890157f5976a.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmicrograph_bench-8b3d890157f5976a.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmicrograph_bench-8b3d890157f5976a.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/fixture.rs:
crates/bench/src/report.rs:
