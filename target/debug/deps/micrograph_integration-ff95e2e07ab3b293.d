/root/repo/target/debug/deps/micrograph_integration-ff95e2e07ab3b293.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmicrograph_integration-ff95e2e07ab3b293.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
