/root/repo/target/debug/deps/concurrent_serving-d8343b5ee9b8d1d5.d: crates/integration/../../tests/concurrent_serving.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent_serving-d8343b5ee9b8d1d5.rmeta: crates/integration/../../tests/concurrent_serving.rs Cargo.toml

crates/integration/../../tests/concurrent_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
