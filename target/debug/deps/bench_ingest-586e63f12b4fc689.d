/root/repo/target/debug/deps/bench_ingest-586e63f12b4fc689.d: crates/bench/benches/bench_ingest.rs Cargo.toml

/root/repo/target/debug/deps/libbench_ingest-586e63f12b4fc689.rmeta: crates/bench/benches/bench_ingest.rs Cargo.toml

crates/bench/benches/bench_ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
