/root/repo/target/debug/deps/micrograph_common-49630ec71448a47a.d: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libmicrograph_common-49630ec71448a47a.rmeta: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/csvio.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/tmpdir.rs:
crates/common/src/topn.rs:
crates/common/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
