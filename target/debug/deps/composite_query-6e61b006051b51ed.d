/root/repo/target/debug/deps/composite_query-6e61b006051b51ed.d: crates/integration/../../tests/composite_query.rs

/root/repo/target/debug/deps/composite_query-6e61b006051b51ed: crates/integration/../../tests/composite_query.rs

crates/integration/../../tests/composite_query.rs:
