/root/repo/target/debug/deps/bench_updates-3d7c221ab4870f06.d: crates/bench/benches/bench_updates.rs Cargo.toml

/root/repo/target/debug/deps/libbench_updates-3d7c221ab4870f06.rmeta: crates/bench/benches/bench_updates.rs Cargo.toml

crates/bench/benches/bench_updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
