/root/repo/target/debug/deps/bench_queries-d6ac55010c178e44.d: crates/bench/benches/bench_queries.rs Cargo.toml

/root/repo/target/debug/deps/libbench_queries-d6ac55010c178e44.rmeta: crates/bench/benches/bench_queries.rs Cargo.toml

crates/bench/benches/bench_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
