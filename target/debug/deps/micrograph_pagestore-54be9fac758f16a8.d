/root/repo/target/debug/deps/micrograph_pagestore-54be9fac758f16a8.d: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs

/root/repo/target/debug/deps/libmicrograph_pagestore-54be9fac758f16a8.rlib: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs

/root/repo/target/debug/deps/libmicrograph_pagestore-54be9fac758f16a8.rmeta: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs

crates/pagestore/src/lib.rs:
crates/pagestore/src/backend.rs:
crates/pagestore/src/buffer.rs:
crates/pagestore/src/page.rs:
crates/pagestore/src/wal.rs:
