/root/repo/target/debug/deps/micrograph_common-26b897ce28c5f1a9.d: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs

/root/repo/target/debug/deps/micrograph_common-26b897ce28c5f1a9: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/csvio.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/tmpdir.rs:
crates/common/src/topn.rs:
crates/common/src/value.rs:
