/root/repo/target/debug/deps/bench_phrasings-23313ac6e6d1a2c5.d: crates/bench/benches/bench_phrasings.rs Cargo.toml

/root/repo/target/debug/deps/libbench_phrasings-23313ac6e6d1a2c5.rmeta: crates/bench/benches/bench_phrasings.rs Cargo.toml

crates/bench/benches/bench_phrasings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
