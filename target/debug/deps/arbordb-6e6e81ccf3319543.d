/root/repo/target/debug/deps/arbordb-6e6e81ccf3319543.d: crates/arbordb/src/lib.rs crates/arbordb/src/db.rs crates/arbordb/src/dict.rs crates/arbordb/src/error.rs crates/arbordb/src/group.rs crates/arbordb/src/import.rs crates/arbordb/src/index.rs crates/arbordb/src/records.rs crates/arbordb/src/store/mod.rs crates/arbordb/src/traversal.rs crates/arbordb/src/txn.rs

/root/repo/target/debug/deps/libarbordb-6e6e81ccf3319543.rlib: crates/arbordb/src/lib.rs crates/arbordb/src/db.rs crates/arbordb/src/dict.rs crates/arbordb/src/error.rs crates/arbordb/src/group.rs crates/arbordb/src/import.rs crates/arbordb/src/index.rs crates/arbordb/src/records.rs crates/arbordb/src/store/mod.rs crates/arbordb/src/traversal.rs crates/arbordb/src/txn.rs

/root/repo/target/debug/deps/libarbordb-6e6e81ccf3319543.rmeta: crates/arbordb/src/lib.rs crates/arbordb/src/db.rs crates/arbordb/src/dict.rs crates/arbordb/src/error.rs crates/arbordb/src/group.rs crates/arbordb/src/import.rs crates/arbordb/src/index.rs crates/arbordb/src/records.rs crates/arbordb/src/store/mod.rs crates/arbordb/src/traversal.rs crates/arbordb/src/txn.rs

crates/arbordb/src/lib.rs:
crates/arbordb/src/db.rs:
crates/arbordb/src/dict.rs:
crates/arbordb/src/error.rs:
crates/arbordb/src/group.rs:
crates/arbordb/src/import.rs:
crates/arbordb/src/index.rs:
crates/arbordb/src/records.rs:
crates/arbordb/src/store/mod.rs:
crates/arbordb/src/traversal.rs:
crates/arbordb/src/txn.rs:
