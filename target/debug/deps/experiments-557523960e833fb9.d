/root/repo/target/debug/deps/experiments-557523960e833fb9.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-557523960e833fb9: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
