/root/repo/target/debug/deps/cross_engine_equivalence-f24dced4dfdb78ea.d: crates/integration/../../tests/cross_engine_equivalence.rs

/root/repo/target/debug/deps/cross_engine_equivalence-f24dced4dfdb78ea: crates/integration/../../tests/cross_engine_equivalence.rs

crates/integration/../../tests/cross_engine_equivalence.rs:
