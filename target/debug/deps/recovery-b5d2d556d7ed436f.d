/root/repo/target/debug/deps/recovery-b5d2d556d7ed436f.d: crates/integration/../../tests/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-b5d2d556d7ed436f.rmeta: crates/integration/../../tests/recovery.rs Cargo.toml

crates/integration/../../tests/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
