/root/repo/target/debug/deps/concurrent_serving-584777946ce73030.d: crates/integration/../../tests/concurrent_serving.rs

/root/repo/target/debug/deps/concurrent_serving-584777946ce73030: crates/integration/../../tests/concurrent_serving.rs

crates/integration/../../tests/concurrent_serving.rs:
