/root/repo/target/debug/examples/quickstart-4d004ad273924745.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-4d004ad273924745.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
