/root/repo/target/debug/examples/live_updates-19b311f9f68991a6.d: crates/core/../../examples/live_updates.rs Cargo.toml

/root/repo/target/debug/examples/liblive_updates-19b311f9f68991a6.rmeta: crates/core/../../examples/live_updates.rs Cargo.toml

crates/core/../../examples/live_updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
