/root/repo/target/debug/examples/influence_analysis-cfeeeb0d91dc6adf.d: crates/core/../../examples/influence_analysis.rs

/root/repo/target/debug/examples/influence_analysis-cfeeeb0d91dc6adf: crates/core/../../examples/influence_analysis.rs

crates/core/../../examples/influence_analysis.rs:
