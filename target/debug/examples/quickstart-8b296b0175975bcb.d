/root/repo/target/debug/examples/quickstart-8b296b0175975bcb.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8b296b0175975bcb: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
