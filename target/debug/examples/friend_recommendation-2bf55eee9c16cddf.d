/root/repo/target/debug/examples/friend_recommendation-2bf55eee9c16cddf.d: crates/core/../../examples/friend_recommendation.rs

/root/repo/target/debug/examples/friend_recommendation-2bf55eee9c16cddf: crates/core/../../examples/friend_recommendation.rs

crates/core/../../examples/friend_recommendation.rs:
