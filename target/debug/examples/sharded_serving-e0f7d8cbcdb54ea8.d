/root/repo/target/debug/examples/sharded_serving-e0f7d8cbcdb54ea8.d: crates/core/../../examples/sharded_serving.rs Cargo.toml

/root/repo/target/debug/examples/libsharded_serving-e0f7d8cbcdb54ea8.rmeta: crates/core/../../examples/sharded_serving.rs Cargo.toml

crates/core/../../examples/sharded_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
