/root/repo/target/debug/examples/import_pipeline-d98f2dbb00fed913.d: crates/core/../../examples/import_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libimport_pipeline-d98f2dbb00fed913.rmeta: crates/core/../../examples/import_pipeline.rs Cargo.toml

crates/core/../../examples/import_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
