/root/repo/target/debug/examples/topic_experts-15e6cf7cdee769ee.d: crates/core/../../examples/topic_experts.rs

/root/repo/target/debug/examples/topic_experts-15e6cf7cdee769ee: crates/core/../../examples/topic_experts.rs

crates/core/../../examples/topic_experts.rs:
