/root/repo/target/debug/examples/degrees_of_separation-c86e423b76b00ada.d: crates/core/../../examples/degrees_of_separation.rs

/root/repo/target/debug/examples/degrees_of_separation-c86e423b76b00ada: crates/core/../../examples/degrees_of_separation.rs

crates/core/../../examples/degrees_of_separation.rs:
