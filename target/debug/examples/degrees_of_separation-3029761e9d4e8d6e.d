/root/repo/target/debug/examples/degrees_of_separation-3029761e9d4e8d6e.d: crates/core/../../examples/degrees_of_separation.rs Cargo.toml

/root/repo/target/debug/examples/libdegrees_of_separation-3029761e9d4e8d6e.rmeta: crates/core/../../examples/degrees_of_separation.rs Cargo.toml

crates/core/../../examples/degrees_of_separation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
