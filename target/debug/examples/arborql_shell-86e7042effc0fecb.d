/root/repo/target/debug/examples/arborql_shell-86e7042effc0fecb.d: crates/core/../../examples/arborql_shell.rs Cargo.toml

/root/repo/target/debug/examples/libarborql_shell-86e7042effc0fecb.rmeta: crates/core/../../examples/arborql_shell.rs Cargo.toml

crates/core/../../examples/arborql_shell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
