/root/repo/target/debug/examples/topic_experts-d20605bd9a1de01f.d: crates/core/../../examples/topic_experts.rs Cargo.toml

/root/repo/target/debug/examples/libtopic_experts-d20605bd9a1de01f.rmeta: crates/core/../../examples/topic_experts.rs Cargo.toml

crates/core/../../examples/topic_experts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
