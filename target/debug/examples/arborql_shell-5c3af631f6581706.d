/root/repo/target/debug/examples/arborql_shell-5c3af631f6581706.d: crates/core/../../examples/arborql_shell.rs

/root/repo/target/debug/examples/arborql_shell-5c3af631f6581706: crates/core/../../examples/arborql_shell.rs

crates/core/../../examples/arborql_shell.rs:
