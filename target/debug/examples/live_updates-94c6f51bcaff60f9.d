/root/repo/target/debug/examples/live_updates-94c6f51bcaff60f9.d: crates/core/../../examples/live_updates.rs

/root/repo/target/debug/examples/live_updates-94c6f51bcaff60f9: crates/core/../../examples/live_updates.rs

crates/core/../../examples/live_updates.rs:
