/root/repo/target/debug/examples/chaos_serving-e876bc04c20468b8.d: crates/core/../../examples/chaos_serving.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_serving-e876bc04c20468b8.rmeta: crates/core/../../examples/chaos_serving.rs Cargo.toml

crates/core/../../examples/chaos_serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
