/root/repo/target/debug/examples/friend_recommendation-b9a804583557e2fa.d: crates/core/../../examples/friend_recommendation.rs Cargo.toml

/root/repo/target/debug/examples/libfriend_recommendation-b9a804583557e2fa.rmeta: crates/core/../../examples/friend_recommendation.rs Cargo.toml

crates/core/../../examples/friend_recommendation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
