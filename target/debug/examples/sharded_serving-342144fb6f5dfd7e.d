/root/repo/target/debug/examples/sharded_serving-342144fb6f5dfd7e.d: crates/core/../../examples/sharded_serving.rs

/root/repo/target/debug/examples/sharded_serving-342144fb6f5dfd7e: crates/core/../../examples/sharded_serving.rs

crates/core/../../examples/sharded_serving.rs:
