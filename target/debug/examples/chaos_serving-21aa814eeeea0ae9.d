/root/repo/target/debug/examples/chaos_serving-21aa814eeeea0ae9.d: crates/core/../../examples/chaos_serving.rs

/root/repo/target/debug/examples/chaos_serving-21aa814eeeea0ae9: crates/core/../../examples/chaos_serving.rs

crates/core/../../examples/chaos_serving.rs:
