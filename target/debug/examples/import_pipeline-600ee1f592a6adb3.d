/root/repo/target/debug/examples/import_pipeline-600ee1f592a6adb3.d: crates/core/../../examples/import_pipeline.rs

/root/repo/target/debug/examples/import_pipeline-600ee1f592a6adb3: crates/core/../../examples/import_pipeline.rs

crates/core/../../examples/import_pipeline.rs:
