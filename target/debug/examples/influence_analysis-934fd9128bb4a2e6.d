/root/repo/target/debug/examples/influence_analysis-934fd9128bb4a2e6.d: crates/core/../../examples/influence_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libinfluence_analysis-934fd9128bb4a2e6.rmeta: crates/core/../../examples/influence_analysis.rs Cargo.toml

crates/core/../../examples/influence_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
