/root/repo/target/release/deps/parking_lot-712688c4242ea1f8.d: crates/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-712688c4242ea1f8.rlib: crates/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-712688c4242ea1f8.rmeta: crates/parking_lot/src/lib.rs

crates/parking_lot/src/lib.rs:
