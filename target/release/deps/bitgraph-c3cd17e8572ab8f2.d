/root/repo/target/release/deps/bitgraph-c3cd17e8572ab8f2.d: crates/bitgraph/src/lib.rs crates/bitgraph/src/bitmap.rs crates/bitgraph/src/extent.rs crates/bitgraph/src/graph.rs crates/bitgraph/src/loader.rs crates/bitgraph/src/objects.rs crates/bitgraph/src/traversal.rs

/root/repo/target/release/deps/libbitgraph-c3cd17e8572ab8f2.rlib: crates/bitgraph/src/lib.rs crates/bitgraph/src/bitmap.rs crates/bitgraph/src/extent.rs crates/bitgraph/src/graph.rs crates/bitgraph/src/loader.rs crates/bitgraph/src/objects.rs crates/bitgraph/src/traversal.rs

/root/repo/target/release/deps/libbitgraph-c3cd17e8572ab8f2.rmeta: crates/bitgraph/src/lib.rs crates/bitgraph/src/bitmap.rs crates/bitgraph/src/extent.rs crates/bitgraph/src/graph.rs crates/bitgraph/src/loader.rs crates/bitgraph/src/objects.rs crates/bitgraph/src/traversal.rs

crates/bitgraph/src/lib.rs:
crates/bitgraph/src/bitmap.rs:
crates/bitgraph/src/extent.rs:
crates/bitgraph/src/graph.rs:
crates/bitgraph/src/loader.rs:
crates/bitgraph/src/objects.rs:
crates/bitgraph/src/traversal.rs:
