/root/repo/target/release/deps/experiments-18db9b8798a79963.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-18db9b8798a79963: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
