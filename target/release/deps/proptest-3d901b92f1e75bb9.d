/root/repo/target/release/deps/proptest-3d901b92f1e75bb9.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3d901b92f1e75bb9.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3d901b92f1e75bb9.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
