/root/repo/target/release/deps/micrograph_integration-ff1ab8076f51bae8.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libmicrograph_integration-ff1ab8076f51bae8.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libmicrograph_integration-ff1ab8076f51bae8.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
