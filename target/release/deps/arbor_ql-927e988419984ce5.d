/root/repo/target/release/deps/arbor_ql-927e988419984ce5.d: crates/arborql/src/lib.rs crates/arborql/src/ast.rs crates/arborql/src/engine.rs crates/arborql/src/exec.rs crates/arborql/src/parser.rs crates/arborql/src/plan.rs crates/arborql/src/token.rs

/root/repo/target/release/deps/libarbor_ql-927e988419984ce5.rlib: crates/arborql/src/lib.rs crates/arborql/src/ast.rs crates/arborql/src/engine.rs crates/arborql/src/exec.rs crates/arborql/src/parser.rs crates/arborql/src/plan.rs crates/arborql/src/token.rs

/root/repo/target/release/deps/libarbor_ql-927e988419984ce5.rmeta: crates/arborql/src/lib.rs crates/arborql/src/ast.rs crates/arborql/src/engine.rs crates/arborql/src/exec.rs crates/arborql/src/parser.rs crates/arborql/src/plan.rs crates/arborql/src/token.rs

crates/arborql/src/lib.rs:
crates/arborql/src/ast.rs:
crates/arborql/src/engine.rs:
crates/arborql/src/exec.rs:
crates/arborql/src/parser.rs:
crates/arborql/src/plan.rs:
crates/arborql/src/token.rs:
