/root/repo/target/release/deps/micrograph_datagen-0583ac79e2c2fd37.d: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/gen.rs crates/datagen/src/stream.rs crates/datagen/src/text.rs

/root/repo/target/release/deps/libmicrograph_datagen-0583ac79e2c2fd37.rlib: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/gen.rs crates/datagen/src/stream.rs crates/datagen/src/text.rs

/root/repo/target/release/deps/libmicrograph_datagen-0583ac79e2c2fd37.rmeta: crates/datagen/src/lib.rs crates/datagen/src/dataset.rs crates/datagen/src/gen.rs crates/datagen/src/stream.rs crates/datagen/src/text.rs

crates/datagen/src/lib.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/gen.rs:
crates/datagen/src/stream.rs:
crates/datagen/src/text.rs:
