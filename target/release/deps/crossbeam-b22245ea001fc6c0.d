/root/repo/target/release/deps/crossbeam-b22245ea001fc6c0.d: crates/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-b22245ea001fc6c0.rlib: crates/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-b22245ea001fc6c0.rmeta: crates/crossbeam/src/lib.rs

crates/crossbeam/src/lib.rs:
