/root/repo/target/release/deps/micrograph_common-5dc2c1c20f1ad745.d: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs

/root/repo/target/release/deps/libmicrograph_common-5dc2c1c20f1ad745.rlib: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs

/root/repo/target/release/deps/libmicrograph_common-5dc2c1c20f1ad745.rmeta: crates/common/src/lib.rs crates/common/src/csvio.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/rng.rs crates/common/src/stats.rs crates/common/src/tmpdir.rs crates/common/src/topn.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/csvio.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
crates/common/src/tmpdir.rs:
crates/common/src/topn.rs:
crates/common/src/value.rs:
