/root/repo/target/release/deps/micrograph_bench-c347573cd5c77359.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libmicrograph_bench-c347573cd5c77359.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libmicrograph_bench-c347573cd5c77359.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/fixture.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/fixture.rs:
crates/bench/src/report.rs:
