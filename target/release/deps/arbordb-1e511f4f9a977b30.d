/root/repo/target/release/deps/arbordb-1e511f4f9a977b30.d: crates/arbordb/src/lib.rs crates/arbordb/src/db.rs crates/arbordb/src/dict.rs crates/arbordb/src/error.rs crates/arbordb/src/group.rs crates/arbordb/src/import.rs crates/arbordb/src/index.rs crates/arbordb/src/records.rs crates/arbordb/src/store/mod.rs crates/arbordb/src/traversal.rs crates/arbordb/src/txn.rs

/root/repo/target/release/deps/libarbordb-1e511f4f9a977b30.rlib: crates/arbordb/src/lib.rs crates/arbordb/src/db.rs crates/arbordb/src/dict.rs crates/arbordb/src/error.rs crates/arbordb/src/group.rs crates/arbordb/src/import.rs crates/arbordb/src/index.rs crates/arbordb/src/records.rs crates/arbordb/src/store/mod.rs crates/arbordb/src/traversal.rs crates/arbordb/src/txn.rs

/root/repo/target/release/deps/libarbordb-1e511f4f9a977b30.rmeta: crates/arbordb/src/lib.rs crates/arbordb/src/db.rs crates/arbordb/src/dict.rs crates/arbordb/src/error.rs crates/arbordb/src/group.rs crates/arbordb/src/import.rs crates/arbordb/src/index.rs crates/arbordb/src/records.rs crates/arbordb/src/store/mod.rs crates/arbordb/src/traversal.rs crates/arbordb/src/txn.rs

crates/arbordb/src/lib.rs:
crates/arbordb/src/db.rs:
crates/arbordb/src/dict.rs:
crates/arbordb/src/error.rs:
crates/arbordb/src/group.rs:
crates/arbordb/src/import.rs:
crates/arbordb/src/index.rs:
crates/arbordb/src/records.rs:
crates/arbordb/src/store/mod.rs:
crates/arbordb/src/traversal.rs:
crates/arbordb/src/txn.rs:
