/root/repo/target/release/deps/micrograph_pagestore-c2d38b51942fa4a7.d: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs

/root/repo/target/release/deps/libmicrograph_pagestore-c2d38b51942fa4a7.rlib: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs

/root/repo/target/release/deps/libmicrograph_pagestore-c2d38b51942fa4a7.rmeta: crates/pagestore/src/lib.rs crates/pagestore/src/backend.rs crates/pagestore/src/buffer.rs crates/pagestore/src/page.rs crates/pagestore/src/wal.rs

crates/pagestore/src/lib.rs:
crates/pagestore/src/backend.rs:
crates/pagestore/src/buffer.rs:
crates/pagestore/src/page.rs:
crates/pagestore/src/wal.rs:
