/root/repo/target/release/deps/criterion-29f857522bf3acab.d: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-29f857522bf3acab.rlib: crates/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-29f857522bf3acab.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
