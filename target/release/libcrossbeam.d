/root/repo/target/release/libcrossbeam.rlib: /root/repo/crates/crossbeam/src/lib.rs
