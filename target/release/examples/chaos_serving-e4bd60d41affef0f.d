/root/repo/target/release/examples/chaos_serving-e4bd60d41affef0f.d: crates/core/../../examples/chaos_serving.rs

/root/repo/target/release/examples/chaos_serving-e4bd60d41affef0f: crates/core/../../examples/chaos_serving.rs

crates/core/../../examples/chaos_serving.rs:
