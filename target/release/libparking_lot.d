/root/repo/target/release/libparking_lot.rlib: /root/repo/crates/parking_lot/src/lib.rs
