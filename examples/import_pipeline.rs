//! The §3.2 import pipeline: one set of CSV sources, two bulk loaders,
//! with the paper's import-behaviour observations visible in the output —
//! smooth concurrent writes on one side, cache-full flush stalls on the
//! other, plus the neighbor-materialization blow-up.
//!
//! ```sh
//! cargo run --release --example import_pipeline
//! ```

use bitgraph::loader::{LoadConfig, LoadOptions};
use micrograph_core::ingest::{bit_script, bit_script_text, ingest_arbor, ingest_bit};
use micrograph_datagen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = GenConfig::small();
    config.users = 3_000;
    let dataset = generate(&config);
    let dir = std::env::temp_dir().join("micrograph-import");
    let _ = std::fs::remove_dir_all(&dir);
    let files = dataset.write_csv(&dir)?;
    println!("Sources in {}:\n{}", dir.display(), dataset.stats().render_table());

    // -- arbordb: the batch importer ----------------------------------------
    let (db, report) = ingest_arbor(
        &files,
        Some(&dir.join("arbordb")),
        arbordb::db::DbConfig::default(),
        &arbordb::import::ImportOptions { sample_interval: 2_000, ..Default::default() },
    )?;
    db.flush()?;
    println!("== arbordb import ==");
    println!("   nodes {:>8}   edges {:>8}", report.nodes, report.edges);
    println!(
        "   node/edge curve jitter (flush jumps): {:.2} / {:.2}",
        report.node_curve.jitter(),
        report.edge_curve.jitter()
    );
    println!(
        "   dense-node step {:.0} ms, index build {:.0} ms, total {:.0} ms, {} bytes on disk",
        report.intermediate_ms,
        report.index_build_ms,
        report.total_ms,
        db.size_bytes()
    );

    // -- bitgraph: the script loader -----------------------------------------
    let script = bit_script(&files, LoadConfig { extent_kb: 64, cache_kb: 512, ..Default::default() });
    println!("\n== bitgraph load script ==\n{}", bit_script_text(&script));
    let (graph, report) = ingest_bit(
        &files,
        Some(&dir.join("bitgraph.gdb")),
        script.config.clone(),
        &LoadOptions { sample_interval: 2_000, abort_after: None },
    )?;
    println!("== bitgraph load ==");
    println!("   nodes {:>8}   edges {:>8}", report.nodes, report.edges);
    println!(
        "   cache-full flush stalls: {} (the Figure 3 jumps); edge jitter {:.2}",
        report.flush_stalls,
        report.edge_curve.jitter()
    );
    for (label, at) in &report.edge_curve.markers {
        println!("   marker: {label} at edge {at}");
    }
    println!("   total {:.0} ms, {} bytes on disk", report.total_ms, graph.disk_bytes());

    // -- the aborted materialized import, in miniature ------------------------
    println!("\n== neighbor materialization (the paper aborted this after 8h) ==");
    let (_, mat) = ingest_bit(
        &files,
        Some(&dir.join("bitgraph-mat.gdb")),
        LoadConfig { materialize: true, ..script.config },
        &LoadOptions::default(),
    )?;
    println!(
        "   materialized: {:.0} ms and {} bytes ({:.1}x the plain load's bytes)",
        mat.total_ms,
        mat.disk_bytes,
        mat.disk_bytes as f64 / report.disk_bytes.max(1) as f64
    );
    Ok(())
}
