//! Scale-out serving: the mixed Q1–Q6 request stream against hash-
//! partitioned engines.
//!
//! Builds `ShardedEngine`s over both backends at 1, 2 and 4 shards from
//! one generated dataset, serves the same deterministic request stream
//! against each (4 reader threads) in both scatter modes — the parallel
//! worker-pool default and the sequential oracle — prints the per-query
//! latency percentiles, and verifies every sharded run, in every mode, is
//! byte-identical to the unsharded engine — the invariant that makes the
//! sharded numbers comparable at all.
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```

use micrograph_core::engine::MicroblogEngine;
use micrograph_core::ingest::{build_engines, build_sharded_engines};
use micrograph_core::serve::{serve, ClassDeadlines, ServeConfig};
use micrograph_core::ScatterMode;
use micrograph_datagen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = GenConfig::small();
    config.users = 1_000;
    let dataset = generate(&config);
    let dir = std::env::temp_dir().join("micrograph-sharded-serving");
    let _ = std::fs::remove_dir_all(&dir);
    let files = dataset.write_csv(&dir)?;
    println!("Base graph: {}", dataset.stats().render_table());

    let serve_config = ServeConfig {
        threads: 4,
        requests: 512,
        seed: 42,
        users: config.users,
        vocab: 16,
        deadline_us: None,
        class_deadlines: ClassDeadlines::default(),
    };

    // Unsharded baselines: the digests every sharded run must reproduce.
    let (arbor, bit, _) = build_engines(&files)?;
    let mut baselines = Vec::new();
    for engine in [&arbor as &dyn MicroblogEngine, &bit] {
        let report = serve(engine, &serve_config)?;
        println!("{}", report.render());
        baselines.push(report.digest());
    }

    for shards in [1usize, 2, 4] {
        let (sharded_arbor, sharded_bit) =
            build_sharded_engines(&dataset, &dir.join(format!("shards-{shards}")), shards)?;
        let pair = [&sharded_arbor as &dyn MicroblogEngine, &sharded_bit];
        for (i, engine) in pair.into_iter().enumerate() {
            // Sequential oracle first, then the parallel default — same
            // stream, same digest, different wall-clock.
            for mode in [ScatterMode::Sequential, ScatterMode::Parallel] {
                assert!(engine.set_scatter_mode(mode));
                let report = serve(engine, &serve_config)?;
                println!("{}", report.render());
                assert_eq!(
                    report.digest(),
                    baselines[i],
                    "{}: sharded results ({mode:?}) diverged from the unsharded engine",
                    engine.name()
                );
            }
        }
    }
    println!(
        "All sharded runs byte-identical to the unsharded engines \
         ({} requests each, 4 reader threads, both scatter modes).",
        serve_config.requests
    );
    Ok(())
}
