//! The §3.3 derived query the paper could not run for lack of retweet
//! edges: "suppose user A is interested in a topic (represented by a
//! hashtag H) and is looking for users to know more about the topic" —
//! composed from Q3.2 (co-occurring hashtags), retweet counts, Q2-style
//! expansion and Q6.1 (degrees of separation).
//!
//! ```sh
//! cargo run --release --example topic_experts
//! ```

use micrograph_core::compose::topic_experts;
use micrograph_core::engine::MicroblogEngine;
use micrograph_core::ingest::build_engines;
use micrograph_datagen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = GenConfig::small();
    config.users = 1_500;
    config.with_retweets = true; // the edge type the paper's crawl lacked
    config.retweet_fraction = 0.3;
    config.tags_per_tweet = 0.8;
    let dataset = generate(&config);
    let dir = std::env::temp_dir().join("micrograph-topics");
    let _ = std::fs::remove_dir_all(&dir);
    let files = dataset.write_csv(&dir)?;
    let (arbor, bit, _) = build_engines(&files)?;

    let asker = 1i64;
    let topic = "tag1"; // the head of the Zipf hashtag distribution

    println!("User {asker} wants experts on #{topic}.\n");
    println!("Step 1 — hashtags co-occurring with #{topic} (Q3.2):");
    for r in arbor.co_occurring_hashtags(topic, 5)? {
        println!("   #{} ({} co-occurrences)", r.key, r.count);
    }

    let experts = topic_experts(&arbor, asker, topic, 8, 4)?;
    println!("\nSteps 2–4 — most-retweeted posters, ordered by social distance:");
    println!("{:>8} {:>10} {:>10} {:>8}", "user", "distance", "retweets", "tweet");
    for e in &experts {
        let dist = e.path_len.map_or("> 4".to_string(), |l| l.to_string());
        println!("{:>8} {:>10} {:>10} {:>8}", e.uid, dist, e.retweet_count, e.tid);
    }

    // Both engines derive the identical expert list.
    let from_bit = topic_experts(&bit, asker, topic, 8, 4)?;
    assert_eq!(experts, from_bit);
    println!("\n(bitgraph agrees on all {} experts)", experts.len());
    Ok(())
}
