//! Chaos serving: deterministic fault injection against the sharded stack.
//!
//! Wraps every shard of a `ShardedEngine` in a seeded `ChaosEngine`, then
//! serves the same mixed Q1–Q6 request stream under four regimes:
//!
//! 1. fault-free (the baseline digest),
//! 2. a transient plan with the default retry policy — every fault heals
//!    within the retry budget, so the digest is **byte-identical** to (1),
//! 3. a hostile plan (permanent faults + panics) in `Strict` mode —
//!    defeated requests surface as typed `<error:…>` markers,
//! 4. the same hostile plan in `Partial` mode — scatter queries skip dead
//!    shards and answer with `<coverage:a/t>` tags instead,
//! 5. replication (DESIGN.md §4i): an R = 2 composition loses replica 0
//!    of **every** shard mid-serve and keeps answering byte-identically
//!    through the failover ladder — no retries heal a permanent loss,
//!    only a spare replica does.
//!
//! Everything is virtual-time: the chaos schedule, backoff, and deadline
//! budget never read a wall clock, so each regime's report is reproducible
//! at any reader thread count.
//!
//! ```sh
//! cargo run --release --example chaos_serving
//! ```

use micrograph_core::fault::silence_injected_panics;
use micrograph_core::ingest::{
    build_chaos_sharded_engines, build_replicated_engines, build_sharded_engines,
};
use micrograph_core::serve::{serve, ClassDeadlines, ServeConfig};
use micrograph_core::{DegradationMode, FaultPlan, MicroblogEngine, RetryPolicy};
use micrograph_datagen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Injected panics are part of the plan; keep them out of stderr.
    silence_injected_panics();

    let mut config = GenConfig::small();
    config.users = 1_000;
    let dataset = generate(&config);
    let dir = std::env::temp_dir().join("micrograph-chaos-serving");
    let _ = std::fs::remove_dir_all(&dir);
    println!("Base graph: {}", dataset.stats().render_table());

    let serve_config = ServeConfig {
        threads: 4,
        requests: 512,
        seed: 42,
        users: config.users,
        vocab: 16,
        deadline_us: None,
        class_deadlines: ClassDeadlines::default(),
    };
    let shards = 4;

    // Regime 1: fault-free baseline.
    let (arbor, _bit) = build_sharded_engines(&dataset, &dir.join("clean"), shards)?;
    let baseline = serve(&arbor, &serve_config)?;
    println!("--- fault-free baseline ---\n{}", baseline.render());

    // Regime 2: transient faults, fully masked by the default retry policy.
    let (chaos, _) = build_chaos_sharded_engines(
        &dataset,
        &dir.join("transient"),
        shards,
        FaultPlan::transient(3),
        RetryPolicy::default(),
        DegradationMode::Strict,
    )?;
    let masked = serve(&chaos, &serve_config)?;
    println!("--- transient plan, retries on ---\n{}", masked.render());
    assert_eq!(
        masked.digest(),
        baseline.digest(),
        "transient faults must be fully masked by retries"
    );
    assert!(masked.faults.total_injected() > 0 && masked.errors == 0);
    println!(
        "masked {} injected faults with {} retries — digest byte-identical to the \
         fault-free run ({:#018x})\n",
        masked.faults.total_injected(),
        masked.faults.retries,
        masked.digest()
    );

    // Regime 3: hostile plan, Strict — permanent faults defeat the retry
    // budget and surface as typed errors; injected panics are caught.
    let (chaos, _) = build_chaos_sharded_engines(
        &dataset,
        &dir.join("hostile-strict"),
        shards,
        FaultPlan::hostile(5),
        RetryPolicy::default(),
        DegradationMode::Strict,
    )?;
    let strict = serve(&chaos, &serve_config)?;
    println!("--- hostile plan, Strict ---\n{}", strict.render());
    if let Some(err) = strict.rendered.iter().find(|r| r.starts_with("<error:")) {
        println!("example failed request: {err}\n");
    }

    // Regime 4: hostile plan, Partial — scatter queries trade completeness
    // for availability, tagged with their shard coverage.
    let (chaos, _) = build_chaos_sharded_engines(
        &dataset,
        &dir.join("hostile-partial"),
        shards,
        FaultPlan::hostile(5),
        RetryPolicy::default(),
        DegradationMode::Partial,
    )?;
    let partial = serve(&chaos, &serve_config)?;
    println!("--- hostile plan, Partial ---\n{}", partial.render());
    if let Some(tagged) = partial.rendered.iter().find(|r| r.contains("<coverage:")) {
        println!("example degraded answer: {tagged}\n");
    }
    println!(
        "Strict errored {} request(s); Partial errored {} and degraded {} — \
         availability bought with coverage tags, never silent truncation.\n",
        strict.errors, partial.errors, partial.degraded
    );

    // Regime 5: kill a replica mid-serve. Two replicas behind every shard
    // slot; after a healthy pass, replica 0 of every shard is permanently
    // lost. Strict mode keeps the digest byte-identical — reads hop to the
    // surviving replica on a deterministic failover ladder.
    let (replicated, _) = build_replicated_engines(&dataset, &dir.join("replicated"), shards, 2)?;
    let healthy = serve(&replicated, &serve_config)?;
    println!("--- replicated (R = 2), all replicas up ---\n{}", healthy.render());
    assert_eq!(healthy.digest(), baseline.digest(), "replication must not move answers");
    for shard in 0..shards {
        replicated.kill_replica(shard, 0);
    }
    let before = replicated.fault_stats();
    let survived = serve(&replicated, &serve_config)?;
    let spent = replicated.fault_stats().since(&before);
    println!("--- replicated (R = 2), replica 0 of every shard dead ---\n{}", survived.render());
    assert_eq!(
        survived.digest(),
        baseline.digest(),
        "losing one replica of every shard must not move a byte in Strict mode"
    );
    assert!(survived.errors == 0 && spent.failovers > 0);
    println!(
        "lost {} of {} replicas, healed every read with {} failover hop(s) — digest still \
         {:#018x}",
        shards,
        shards * 2,
        spent.failovers,
        survived.digest()
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
