//! An interactive ArborQL shell over a generated Twitter-shaped graph —
//! the closest thing to the `cypher-shell` sessions behind the paper's §4
//! introspection. Type queries; `:explain Q` shows the plan, `:describe Q`
//! shows it with the cost-based planner's estimated cardinalities
//! (DESIGN.md §4g), `:profile Q` runs the profiler (per-operator rows +
//! db hits), `:stats` dumps engine counters, `:exec tuple|vectorized`
//! switches the executor.
//!
//! ```sh
//! cargo run --release --example arborql_shell            # interactive
//! echo 'MATCH (u:user) RETURN count(*)' | cargo run --release --example arborql_shell
//! ```

use std::io::{BufRead, Write};

use micrograph_core::ingest::build_engines;
use micrograph_datagen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let users: u64 = std::env::var("SHELL_USERS").ok().and_then(|s| s.parse().ok()).unwrap_or(1_000);
    let mut config = GenConfig::small();
    config.users = users;
    eprintln!("# generating {users}-user dataset and importing...");
    let dataset = generate(&config);
    let dir = std::env::temp_dir().join("micrograph-shell");
    let _ = std::fs::remove_dir_all(&dir);
    let files = dataset.write_csv(&dir)?;
    let (arbor, _bit, _) = build_engines(&files)?;
    let ql = arbor.ql();
    eprintln!("# ready: {}", dataset.stats().render_table().replace('\n', "\n# "));
    eprintln!("# schema: (:user {{uid, name, followers, verified}}), (:tweet {{tid, text}}), (:hashtag {{tag}})");
    eprintln!("# edges:  follows, posts, mentions, tags");
    eprintln!("# commands: :explain <q>   :describe <q>   :profile <q>   :exec tuple|vectorized   :stats   :quit");
    eprintln!("# example: MATCH (a:user {{uid: 1}})-[:follows]->(f) RETURN f.uid LIMIT 5");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        eprint!("arborql> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":stats" {
            let s = arbor.db().stats();
            writeln!(
                out,
                "db hits {}  (cache hits {}, misses {}); index seeks {}; label scans {}",
                s.pages.accesses, s.pages.hits, s.pages.misses, s.index_seeks, s.label_scans
            )?;
            let (ch, cm) = ql.cache_stats();
            writeln!(out, "plan cache: {ch} hits / {cm} misses")?;
            continue;
        }
        if let Some(q) = line.strip_prefix(":explain ") {
            match ql.explain(q) {
                Ok(plan) => write!(out, "{plan}")?,
                Err(e) => writeln!(out, "error: {e}")?,
            }
            continue;
        }
        if let Some(q) = line.strip_prefix(":describe ") {
            match ql.describe(q) {
                Ok(plan) => write!(out, "{plan}")?,
                Err(e) => writeln!(out, "error: {e}")?,
            }
            continue;
        }
        if let Some(mode) = line.strip_prefix(":exec ") {
            match mode.trim() {
                "tuple" => ql.set_exec_mode(micrograph_core::ExecMode::Tuple),
                "vectorized" => ql.set_exec_mode(micrograph_core::ExecMode::Vectorized),
                other => {
                    writeln!(out, "error: unknown executor '{other}' (tuple | vectorized)")?;
                    continue;
                }
            }
            writeln!(out, "executor: {}", ql.exec_mode().as_str())?;
            continue;
        }
        if let Some(q) = line.strip_prefix(":profile ") {
            match ql.profile(q, &[]) {
                Ok(p) => {
                    write!(out, "{}", p.render())?;
                    for row in &p.result.rows {
                        writeln!(out, "{}", render_row(row))?;
                    }
                }
                Err(e) => writeln!(out, "error: {e}")?,
            }
            continue;
        }
        match ql.query(line, &[]) {
            Ok(r) => {
                writeln!(out, "{}", r.columns.join(" | "))?;
                for row in r.rows.iter().take(50) {
                    writeln!(out, "{}", render_row(row))?;
                }
                if r.rows.len() > 50 {
                    writeln!(out, "... {} more rows", r.rows.len() - 50)?;
                }
                writeln!(
                    out,
                    "({} rows, {:.2} ms, {} db hits{})",
                    r.stats.rows,
                    r.stats.exec_ms,
                    r.stats.db_hits,
                    if r.stats.plan_cached { ", cached plan" } else { "" }
                )?;
            }
            Err(e) => writeln!(out, "error: {e}")?,
        }
    }
    Ok(())
}

fn render_row(row: &[micrograph_core::Value]) -> String {
    row.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" | ")
}
