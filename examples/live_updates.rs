//! The paper's future work, live: "investigate how the graph could be
//! generated on-the-fly with new incoming users, tweets and follow
//! relationships … it would be possible to test for the ability of systems
//! to handle update workloads as well" (§5).
//!
//! Streams update events into both engines while interleaving reads, then
//! verifies the engines still agree on the workload.
//!
//! ```sh
//! cargo run --release --example live_updates
//! ```

use micrograph_common::stats::Timer;
use micrograph_core::engine::MicroblogEngine;
use micrograph_core::ingest::{build_engines, ingest_arbor};
use micrograph_datagen::{generate, GenConfig, StreamGen, StreamMix, UpdateEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = GenConfig::small();
    config.users = 1_000;
    let dataset = generate(&config);
    let dir = std::env::temp_dir().join("micrograph-live");
    let _ = std::fs::remove_dir_all(&dir);
    let files = dataset.write_csv(&dir)?;
    // A disk-backed arbordb (real WAL commits) against the in-memory-serving
    // bitgraph — the two engines' natural write paths.
    let (db, _) = ingest_arbor(
        &files,
        Some(&dir.join("arbordb")),
        arbordb::db::DbConfig::default(),
        &arbordb::import::ImportOptions::default(),
    )?;
    let arbor = micrograph_core::ArborEngine::new(db);
    let (_unused, bit, _) = build_engines(&files)?;
    println!("Base graph: {}", dataset.stats().render_table());

    const EVENTS: usize = 2_000;
    let events = StreamGen::new(&dataset, &config, 99, StreamMix::default()).events(EVENTS);
    let (mut users, mut follows, mut tweets) = (0u32, 0u32, 0u32);
    for e in &events {
        match e {
            UpdateEvent::NewUser { .. } => users += 1,
            UpdateEvent::NewFollow { .. } => follows += 1,
            UpdateEvent::NewTweet { .. } => tweets += 1,
        }
    }
    println!("Streaming {EVENTS} events: {users} users, {follows} follows, {tweets} tweets\n");

    let t = Timer::start();
    for e in &events {
        arbor.apply_event(e)?;
    }
    let arbor_ms = t.elapsed_ms();
    println!(
        "arbordb (one WAL transaction per event): {arbor_ms:.0} ms  ({:.0} events/s)",
        EVENTS as f64 / arbor_ms * 1000.0
    );

    let t = Timer::start();
    for e in &events {
        bit.apply_event(e)?;
    }
    let bit_ms = t.elapsed_ms();
    println!(
        "bitgraph (in-memory structures + extent log): {bit_ms:.0} ms  ({:.0} events/s)\n",
        EVENTS as f64 / bit_ms * 1000.0
    );

    // The engines must still agree after the stream.
    let mut checked = 0;
    for uid in (1..=1_000).step_by(97) {
        assert_eq!(arbor.followees(uid)?, bit.followees(uid)?);
        assert_eq!(arbor.co_mentioned_users(uid, 5)?, bit.co_mentioned_users(uid, 5)?);
        checked += 1;
    }
    println!("Post-stream equivalence verified on {checked} users.");

    // Reads interleave with writes without contention (single writer).
    let hot = arbor.recommend_followees(1, 5)?;
    println!("Q4.1 for user 1 after the stream: {} recommendations", hot.len());
    Ok(())
}
