//! The paper's future work, live: "investigate how the graph could be
//! generated on-the-fly with new incoming users, tweets and follow
//! relationships … it would be possible to test for the ability of systems
//! to handle update workloads as well" (§5).
//!
//! Streams update events into both engines twice — once through the
//! per-event path (one WAL transaction per event on arbordb), once through
//! the group-commit batch path (DESIGN.md §4j) — prints both throughputs,
//! and verifies the two feeds leave every engine in byte-identical state.
//!
//! ```sh
//! cargo run --release --example live_updates
//! ```

use micrograph_common::stats::Timer;
use micrograph_core::adapters::BitEngine;
use micrograph_core::engine::MicroblogEngine;
use micrograph_core::ingest::{ingest_arbor, ingest_bit};
use micrograph_datagen::{generate, GenConfig, StreamGen, StreamMix, UpdateEvent};

const EVENTS: usize = 2_000;
const BATCH: usize = 256;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = GenConfig::small();
    config.users = 1_000;
    let dataset = generate(&config);
    let dir = std::env::temp_dir().join("micrograph-live");
    let _ = std::fs::remove_dir_all(&dir);
    let files = dataset.write_csv(&dir)?;
    println!("Base graph: {}", dataset.stats().render_table());

    let events = StreamGen::new(&dataset, &config, 99, StreamMix::default()).events(EVENTS);
    let (mut users, mut follows, mut tweets) = (0u32, 0u32, 0u32);
    for e in &events {
        match e {
            UpdateEvent::NewUser { .. } => users += 1,
            UpdateEvent::NewFollow { .. } => follows += 1,
            UpdateEvent::NewTweet { .. } => tweets += 1,
        }
    }
    println!("Streaming {EVENTS} events: {users} users, {follows} follows, {tweets} tweets\n");

    // A disk-backed arbordb (real WAL commits) against the in-memory-serving
    // bitgraph — the two engines' natural write paths. Each feed mode gets
    // its own freshly-ingested engine so the comparisons are apples-to-apples.
    let build_arbor =
        |name: &str| -> Result<micrograph_core::ArborEngine, Box<dyn std::error::Error>> {
            let (db, _) = ingest_arbor(
                &files,
                Some(&dir.join(name)),
                arbordb::db::DbConfig::default(),
                &arbordb::import::ImportOptions::default(),
            )?;
            Ok(micrograph_core::ArborEngine::new(db))
        };
    let build_bit = || -> Result<BitEngine, Box<dyn std::error::Error>> {
        let (g, _) = ingest_bit(
            &files,
            None,
            bitgraph::loader::LoadConfig::default(),
            &bitgraph::loader::LoadOptions { sample_interval: 5_000, abort_after: None },
        )?;
        Ok(BitEngine::new(g)?)
    };

    // Feed 1: the per-event loop — the semantic oracle.
    let arbor_loop = build_arbor("arbordb-loop")?;
    let bit_loop = build_bit()?;
    let mut loop_eps = Vec::new();
    for (label, engine) in [
        ("arbordb (one WAL transaction per event)", &arbor_loop as &dyn MicroblogEngine),
        ("bitgraph (snapshot republished per event)", &bit_loop),
    ] {
        let t = Timer::start();
        for e in &events {
            engine.apply_event(e)?;
        }
        let ms = t.elapsed_ms();
        let eps = EVENTS as f64 / ms * 1000.0;
        println!("{label}: {ms:.0} ms  ({eps:.0} events/s)");
        loop_eps.push(eps);
    }

    // Feed 2: group commit — whole batches staged in one transaction, the
    // WAL tape appended under one lock acquisition, one snapshot publish.
    let arbor_batch = build_arbor("arbordb-batch")?;
    let bit_batch = build_bit()?;
    println!();
    for ((label, engine), base) in [
        ("arbordb (group commit)", &arbor_batch as &dyn MicroblogEngine),
        ("bitgraph (batched snapshot publish)", &bit_batch),
    ]
    .into_iter()
    .zip(loop_eps)
    {
        let t = Timer::start();
        for chunk in events.chunks(BATCH) {
            engine.apply_event_batch(chunk)?;
        }
        let ms = t.elapsed_ms();
        let eps = EVENTS as f64 / ms * 1000.0;
        println!(
            "{label}, batch {BATCH}: {ms:.0} ms  ({eps:.0} events/s, {:.1}x over per-event)",
            eps / base.max(f64::MIN_POSITIVE)
        );
    }

    // Batched ≡ looped, and the engines still agree with each other.
    let mut checked = 0;
    for uid in (1..=1_000).step_by(97) {
        let follow = arbor_loop.followees(uid)?;
        assert_eq!(follow, arbor_batch.followees(uid)?);
        assert_eq!(follow, bit_loop.followees(uid)?);
        assert_eq!(follow, bit_batch.followees(uid)?);
        let co = arbor_loop.co_mentioned_users(uid, 5)?;
        assert_eq!(co, arbor_batch.co_mentioned_users(uid, 5)?);
        assert_eq!(co, bit_batch.co_mentioned_users(uid, 5)?);
        checked += 1;
    }
    println!("\nPost-stream equivalence (batched = looped, arbordb = bitgraph) on {checked} users.");

    // Reads interleave with writes without contention (single writer).
    let hot = arbor_batch.recommend_followees(1, 5)?;
    println!("Q4.1 for user 1 after the stream: {} recommendations", hot.len());
    Ok(())
}
