//! Degrees of separation (the paper's Q6 scenario): "shortest path queries
//! can be the basis of a query that needs to target a particular user or a
//! community of users, essentially finding the degrees of separation from
//! one person to another."
//!
//! Also demonstrates the two engines' different path primitives: arbordb's
//! bidirectional BFS against bitgraph's `SinglePairShortestPathBFS`.
//!
//! ```sh
//! cargo run --release --example degrees_of_separation
//! ```

use micrograph_common::rng::SplitMix64;
use micrograph_common::stats::{OnlineStats, Timer};
use micrograph_core::engine::MicroblogEngine;
use micrograph_core::ingest::build_engines;
use micrograph_datagen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = GenConfig::small();
    config.users = 2_000;
    let dataset = generate(&config);
    let dir = std::env::temp_dir().join("micrograph-paths");
    let _ = std::fs::remove_dir_all(&dir);
    let files = dataset.write_csv(&dir)?;
    let (arbor, bit, _) = build_engines(&files)?;

    let users = dataset.users.len() as u64;
    let mut rng = SplitMix64::new(6);
    let max_hops = 5;

    println!("Random pair separations (max {max_hops} hops):");
    let mut histogram = std::collections::BTreeMap::new();
    let mut arbor_ms = OnlineStats::new();
    let mut bit_ms = OnlineStats::new();
    for _ in 0..300 {
        let a = rng.next_range(1, users + 1) as i64;
        let b = rng.next_range(1, users + 1) as i64;
        if a == b {
            continue;
        }
        let t = Timer::start();
        let len_a = arbor.shortest_path_len(a, b, max_hops)?;
        arbor_ms.add(t.elapsed_ms());
        let t = Timer::start();
        let len_b = bit.shortest_path_len(a, b, max_hops)?;
        bit_ms.add(t.elapsed_ms());
        assert_eq!(len_a, len_b, "engines must agree on path length");
        *histogram.entry(len_a).or_insert(0u32) += 1;
    }
    for (len, n) in &histogram {
        let label = match len {
            Some(l) => format!("{l} hops"),
            None => format!("> {max_hops} hops"),
        };
        println!("   {label:>9}: {n:>4} pairs {}", "#".repeat((*n as usize) / 4));
    }
    println!(
        "\nMean lookup: arbordb {:.3} ms (bidirectional BFS) vs bitgraph {:.3} ms (unidirectional BFS)",
        arbor_ms.mean(),
        bit_ms.mean()
    );
    println!("The paper's Figure 4(g)/(h): the engine with the better path primitive wins.");
    Ok(())
}
