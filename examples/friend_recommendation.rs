//! Friend recommendation (the paper's Q4 scenario): recommend accounts to
//! follow from the user's 2-step neighborhood, and show why query phrasing
//! matters (§4's three formulations of the same query).
//!
//! ```sh
//! cargo run --release --example friend_recommendation
//! ```

use micrograph_common::stats::Timer;
use micrograph_core::adapters::RecommendationPhrasing;
use micrograph_core::engine::MicroblogEngine;
use micrograph_core::ingest::build_engines;
use micrograph_datagen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = GenConfig::small();
    config.users = 1_500;
    let dataset = generate(&config);
    let dir = std::env::temp_dir().join("micrograph-friendrec");
    let _ = std::fs::remove_dir_all(&dir);
    let files = dataset.write_csv(&dir)?;
    let (arbor, bit, _) = build_engines(&files)?;

    // Pick a well-connected user as the subject.
    let mut outdeg = std::collections::HashMap::new();
    for &(s, _) in &dataset.follows {
        *outdeg.entry(s as i64).or_insert(0u32) += 1;
    }
    let (&uid, &deg) = outdeg.iter().max_by_key(|(_, &d)| d).expect("users exist");
    println!("Subject: user {uid} (follows {deg} accounts)\n");

    // Q4.1 — followees of followees.
    println!("Q4.1 follow these accounts (followees of your followees):");
    for r in arbor.recommend_followees(uid, 5)? {
        println!("   user {:>6} — followed by {} of your followees", r.key, r.count);
    }
    // Q4.2 — followers of followees ("people in the same audiences").
    println!("\nQ4.2 these accounts share your interests (followers of your followees):");
    for r in arbor.recommend_followers(uid, 5)? {
        println!("   user {:>6} — follows {} of your followees", r.key, r.count);
    }

    // The three §4 phrasings of Q4.1 — same answer, different cost.
    println!("\nThree phrasings of the same declarative query (Section 4):");
    for (label, p) in [
        ("(a) [:follows*2..2]     ", RecommendationPhrasing::VarLength),
        ("(b) explicit expansion  ", RecommendationPhrasing::Canonical),
        ("(c) undirected expansion", RecommendationPhrasing::Undirected),
    ] {
        let t = Timer::start();
        let rows = arbor.recommend_phrasing(p, uid, 5)?;
        println!("   {label} -> {} rows in {:>8.2} ms", rows.len(), t.elapsed_ms());
    }

    // The navigation engine pays one neighbors() call per followee.
    bit.reset_stats();
    let t = Timer::start();
    let recs = bit.recommend_followees(uid, 5)?;
    println!(
        "\nbitgraph: {} rows in {:.2} ms using {} navigation operations",
        recs.len(),
        t.elapsed_ms(),
        bit.ops_count()
    );
    Ok(())
}
