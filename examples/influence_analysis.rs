//! Influence analysis (the paper's Q5 scenario): "for targeting promotions
//! a retail store might be interested in the community of users whom they
//! can influence" — current influencers already follow the account,
//! potential ones mention it without following.
//!
//! ```sh
//! cargo run --release --example influence_analysis
//! ```

use micrograph_core::engine::MicroblogEngine;
use micrograph_core::ingest::build_engines;
use micrograph_datagen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = GenConfig::small();
    config.users = 1_200;
    config.mentions_per_tweet = 1.0;
    let dataset = generate(&config);
    let dir = std::env::temp_dir().join("micrograph-influence");
    let _ = std::fs::remove_dir_all(&dir);
    let files = dataset.write_csv(&dir)?;
    let (arbor, bit, _) = build_engines(&files)?;

    // The most-mentioned account plays the "retail store".
    let mut mention_count = std::collections::HashMap::new();
    for &(_, u) in &dataset.mentions {
        *mention_count.entry(u as i64).or_insert(0u32) += 1;
    }
    let (&store, &mentions) =
        mention_count.iter().max_by_key(|(_, &c)| c).expect("mentions exist");
    println!("Account under analysis: user {store} ({mentions} mentions)\n");

    for engine in [&arbor as &dyn MicroblogEngine, &bit as &dyn MicroblogEngine] {
        engine.reset_stats();
        let current = engine.current_influence(store, 5)?;
        let potential = engine.potential_influence(store, 5)?;
        println!("== {} ({} engine ops) ==", engine.name(), engine.ops_count());
        println!("Q5.1 current influence — mentioners who already follow:");
        for r in &current {
            println!("   user {:>6} mentioned them {} times", r.key, r.count);
        }
        println!("Q5.2 potential influence — mentioners to convert into followers:");
        for r in &potential {
            println!("   user {:>6} mentioned them {} times", r.key, r.count);
        }
        println!();
    }

    // Who gets mentioned together with the store (Q3.1)?
    println!("Q3.1 co-mentioned accounts (arbordb):");
    for r in arbor.co_mentioned_users(store, 5)? {
        println!("   user {:>6} co-mentioned {} times", r.key, r.count);
    }
    Ok(())
}
