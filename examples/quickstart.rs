//! Quickstart: generate a small Twitter-shaped dataset, load it into both
//! graph engines, and run a few Table 2 queries on each.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use micrograph_core::engine::MicroblogEngine;
use micrograph_core::ingest::build_engines;
use micrograph_datagen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A deterministic synthetic dataset (see `micrograph-datagen`).
    let mut config = GenConfig::small();
    config.users = 1_000;
    let dataset = generate(&config);
    println!("Generated dataset:\n{}", dataset.stats().render_table());

    // 2. Emit the CSV sources and bulk-load them into BOTH engines —
    //    "the same source files ... were used with both databases".
    let dir = std::env::temp_dir().join("micrograph-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let files = dataset.write_csv(&dir)?;
    let (arbor, bit, reports) = build_engines(&files)?;
    println!(
        "Imported {} nodes / {} edges — arbordb {:.0} ms, bitgraph {:.0} ms\n",
        reports.arbor.nodes, reports.arbor.edges, reports.arbor.total_ms, reports.bit.total_ms
    );

    // 3. Run the same queries on both engines.
    let uid = 1;
    for engine in [&arbor as &dyn MicroblogEngine, &bit as &dyn MicroblogEngine] {
        println!("== {} ==", engine.name());
        let followees = engine.followees(uid)?;
        println!("Q2.1 followees of user {uid}: {} users", followees.len());
        let hashtags = engine.followee_hashtags(uid)?;
        println!(
            "Q2.3 hashtags used by their posts: {:?}",
            &hashtags[..hashtags.len().min(5)]
        );
        let recs = engine.recommend_followees(uid, 5)?;
        println!("Q4.1 top-5 follow recommendations:");
        for r in &recs {
            println!("   user {} (followed by {} of your followees)", r.key, r.count);
        }
        let popular = engine.users_with_followers_over(20)?;
        println!("Q1.1 users with >20 followers: {}", popular.len());
        match engine.shortest_path_len(1, 500, 5)? {
            Some(len) => println!("Q6.1 degrees of separation 1 → 500: {len}"),
            None => println!("Q6.1 users 1 and 500 are more than 5 hops apart"),
        }
        println!();
    }

    // 4. The declarative engine also exposes its language directly.
    let result = arbor.ql().query(
        "MATCH (u:user) WHERE u.followers > $th RETURN u.uid, u.followers \
         ORDER BY u.followers DESC LIMIT 3",
        &[("th", micrograph_core::Value::Int(10))],
    )?;
    println!("ArborQL top-3 by followers (db hits: {}):", result.stats.db_hits);
    for row in &result.rows {
        println!("   uid {} — {} followers", row[0], row[1]);
    }
    Ok(())
}
